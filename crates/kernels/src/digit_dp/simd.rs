//! SIMD tier: independent DP instances paired into SSE2 lanes.
//!
//! The float-association rule forbids vectorizing *within* one DP (the
//! digit recurrence is a serial dependency chain), so this tier vectorizes
//! *across* instances: the two candidate values of a seed bit
//! (`edge_shares`), the two marginals of an edge
//! (`joint_coin_probs`), and the CDF corners of an interval
//! (`joint_interval`) each run as one two-lane DP. Per-lane SSE2
//! arithmetic is IEEE-identical to the scalar ops, and case masks are
//! applied bitwise: a masked-out contribution adds `+0.0`, which preserves
//! the accumulator bits because every state and term is finite and
//! non-negative (the accumulators start at `+0.0` and only ever add
//! probabilities). The reference's `prob == 0 → skip` shortcut likewise
//! becomes an explicit `+0.0` add. SSE2 is part of the x86_64 baseline
//! ABI, so the lane kernels compile unconditionally there and the
//! `unsafe` at each call site discharges trivially (the feature is always
//! present); every other architecture delegates to the
//! [`scalar`] tier.

use super::{scalar, Soa};
use crate::forms::BitForm;

/// Coin probabilities: the joint DP runs scalar (one instance), the two
/// marginals pair into lanes.
#[must_use]
pub(crate) fn joint_coin_probs(sx: &Soa, t_x: u64, sy: &Soa, t_y: u64) -> [f64; 4] {
    #[cfg(target_arch = "x86_64")]
    {
        let full = 1u64 << sx.b;
        if t_x < full && t_y < full {
            let p11 = scalar::prob_joint_lt(sx, t_x, sy, t_y);
            // SAFETY: SSE2 is part of the x86_64 baseline ABI.
            let [px, py] = unsafe { x86::marginal2(sx, t_x, sy, t_y) };
            let p10 = (px - p11).max(0.0);
            let p01 = (py - p11).max(0.0);
            let p00 = (1.0 - px - py + p11).max(0.0);
            return [p00, p01, p10, p11];
        }
    }
    scalar::joint_coin_probs(sx, t_x, sy, t_y)
}

/// Edge aggregation: the two candidates' joint DPs run as one two-lane DP,
/// then the four marginals as two two-lane DPs. The per-candidate combine
/// uses only `p11` and `p00`, exactly as the reference shares do.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn edge_shares(
    forms_u: &[BitForm],
    over_u: [BitForm; 2],
    t_u: u64,
    k0_inv_u: f64,
    k1_inv_u: f64,
    forms_v: &[BitForm],
    over_v: [BitForm; 2],
    t_v: u64,
    k0_inv_v: f64,
    k1_inv_v: f64,
    slice: usize,
) -> [f64; 4] {
    #[cfg(target_arch = "x86_64")]
    {
        let full = 1u64 << forms_u.len();
        if t_u < full && t_v < full {
            let su0 = Soa::pack(forms_u, Some((slice, over_u[0])));
            let su1 = Soa::pack(forms_u, Some((slice, over_u[1])));
            let sv0 = Soa::pack(forms_v, Some((slice, over_v[0])));
            let sv1 = Soa::pack(forms_v, Some((slice, over_v[1])));
            // SAFETY: SSE2 is part of the x86_64 baseline ABI.
            let (p11, px, py) = unsafe {
                (
                    x86::joint2(&su0, t_u, &sv0, t_v, &su1, t_u, &sv1, t_v),
                    x86::marginal2(&su0, t_u, &su1, t_u),
                    x86::marginal2(&sv0, t_v, &sv1, t_v),
                )
            };
            let mut out = [0.0f64; 4];
            for cand in 0..2 {
                let p00 = (1.0 - px[cand] - py[cand] + p11[cand]).max(0.0);
                out[2 * cand] = p11[cand] * k1_inv_u + p00 * k0_inv_u;
                out[2 * cand + 1] = p11[cand] * k1_inv_v + p00 * k0_inv_v;
            }
            return out;
        }
    }
    scalar::edge_shares(
        forms_u, over_u, t_u, k0_inv_u, k1_inv_u, forms_v, over_v, t_v, k0_inv_v, k1_inv_v, slice,
    )
}

/// Interval probability: in-range CDF corners pair into two-lane joint DPs
/// (a threshold at `2^b` resolves to 1 or a marginal, as in the reference
/// guards); the combine order is fixed.
#[must_use]
pub fn joint_interval(
    forms_u: &[BitForm],
    ul: u64,
    uh: u64,
    forms_v: &[BitForm],
    vl: u64,
    vh: u64,
) -> f64 {
    let su = Soa::pack(forms_u, None);
    let sv = Soa::pack(forms_v, None);
    joint_interval_packed(&su, ul, uh, &sv, vl, vh)
}

/// [`joint_interval`] on inputs the caller keeps packed.
#[must_use]
pub fn joint_interval_packed(su: &Soa, ul: u64, uh: u64, sv: &Soa, vl: u64, vh: u64) -> f64 {
    #[cfg(not(target_arch = "x86_64"))]
    {
        scalar::joint_interval_packed(su, ul, uh, sv, vl, vh)
    }
    #[cfg(target_arch = "x86_64")]
    {
        let full = 1u64 << su.b;
        let corners = [(uh, vh), (ul, vh), (uh, vl), (ul, vl)];
        let mut j = [0.0f64; 4];
        let mut pending = [0usize; 4];
        let mut np = 0;
        for (idx, &(a, c)) in corners.iter().enumerate() {
            if a >= full && c >= full {
                j[idx] = 1.0;
            } else if a >= full {
                j[idx] = scalar::prob_lt(sv, c);
            } else if c >= full {
                j[idx] = scalar::prob_lt(su, a);
            } else {
                pending[np] = idx;
                np += 1;
            }
        }
        let mut k = 0;
        while k + 1 < np {
            let (i0, i1) = (pending[k], pending[k + 1]);
            // SAFETY: SSE2 is part of the x86_64 baseline ABI.
            let r = unsafe {
                x86::joint2(
                    su,
                    corners[i0].0,
                    sv,
                    corners[i0].1,
                    su,
                    corners[i1].0,
                    sv,
                    corners[i1].1,
                )
            };
            j[i0] = r[0];
            j[i1] = r[1];
            k += 2;
        }
        if k < np {
            let idx = pending[k];
            j[idx] = scalar::prob_joint_lt(su, corners[idx].0, sv, corners[idx].1);
        }
        (j[0] - j[1] - j[2] + j[3]).max(0.0)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::super::{pmf_at, Soa};
    use std::arch::x86_64::{
        __m128d, _mm_add_pd, _mm_and_pd, _mm_andnot_pd, _mm_cmpeq_pd, _mm_cmplt_pd, _mm_cvtsd_f64,
        _mm_mul_pd, _mm_or_pd, _mm_set1_pd, _mm_set_pd, _mm_setzero_pd, _mm_sub_pd,
        _mm_unpackhi_pd,
    };

    #[inline]
    #[target_feature(enable = "sse2")]
    fn lanes(lo: f64, hi: f64) -> __m128d {
        _mm_set_pd(hi, lo)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn unpack(v: __m128d) -> [f64; 2] {
        [_mm_cvtsd_f64(v), _mm_cvtsd_f64(_mm_unpackhi_pd(v, v))]
    }

    /// Two independent marginal DPs, one per lane. Preconditions: equal
    /// digit counts, both thresholds `< 2^b` (guards resolved by callers).
    #[must_use]
    #[target_feature(enable = "sse2")]
    pub(super) fn marginal2(s0: &Soa, t0: u64, s1: &Soa, t1: u64) -> [f64; 2] {
        debug_assert_eq!(s0.b, s1.b);
        debug_assert!(t0 < 1 << s0.b && t1 < 1 << s1.b);
        let one = _mm_set1_pd(1.0);
        let mut p_eq = one;
        let mut p_lt = _mm_setzero_pd();
        for i in (0..s0.b).rev() {
            let p1 = lanes(s0.prob_one(i), s1.prob_one(i));
            let one_m = _mm_sub_pd(one, p1);
            // Lane mask: threshold bit i set. Encoded as 0.0/1.0 and
            // compared in f64 (SSE2 has no 64-bit integer compare).
            let tb = lanes((t0 >> i & 1) as f64, (t1 >> i & 1) as f64);
            let m = _mm_cmpeq_pd(tb, one);
            // tbit=1 lanes: p_lt += p_eq·(1−p1); p_eq ← p_eq·p1.
            // tbit=0 lanes: p_lt += +0.0;        p_eq ← p_eq·(1−p1).
            let lt_term = _mm_mul_pd(p_eq, one_m);
            p_lt = _mm_add_pd(p_lt, _mm_and_pd(lt_term, m));
            p_eq = _mm_or_pd(
                _mm_and_pd(_mm_mul_pd(p_eq, p1), m),
                _mm_andnot_pd(m, lt_term),
            );
        }
        unpack(p_lt)
    }

    /// Two independent joint DPs, one per lane: lane `l` computes
    /// `Pr[z_{x_l} < tx_l ∧ z_{y_l} < ty_l]`. Preconditions as above for
    /// all four thresholds.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    #[target_feature(enable = "sse2")]
    pub(super) fn joint2(
        sx0: &Soa,
        tx0: u64,
        sy0: &Soa,
        ty0: u64,
        sx1: &Soa,
        tx1: u64,
        sy1: &Soa,
        ty1: u64,
    ) -> [f64; 2] {
        let b = sx0.b;
        debug_assert!(sy0.b == b && sx1.b == b && sy1.b == b);
        debug_assert!(tx0 < 1 << b && ty0 < 1 << b && tx1 < 1 << b && ty1 < 1 << b);
        let mut ee = _mm_set1_pd(1.0);
        let mut el = _mm_setzero_pd();
        let mut le = _mm_setzero_pd();
        let mut ll = _mm_setzero_pd();
        for i in (0..b).rev() {
            let q0 = pmf_at(sx0, sy0, i);
            let q1 = pmf_at(sx1, sy1, i);
            let tbx = lanes((tx0 >> i & 1) as f64, (tx1 >> i & 1) as f64);
            let tby = lanes((ty0 >> i & 1) as f64, (ty1 >> i & 1) as f64);
            let mut nee = _mm_setzero_pd();
            let mut nel = _mm_setzero_pd();
            let mut nle = _mm_setzero_pd();
            let mut nll = _mm_setzero_pd();
            // pmf index order 0..4, as in the reference loop; zero-prob
            // entries contribute +0.0 instead of being skipped.
            for idx in 0..4usize {
                let bx = _mm_set1_pd((idx >> 1) as f64);
                let by = _mm_set1_pd((idx & 1) as f64);
                let p = lanes(q0[idx], q1[idx]);
                let x_eq = _mm_cmpeq_pd(bx, tbx);
                let x_lt = _mm_cmplt_pd(bx, tbx);
                let y_eq = _mm_cmpeq_pd(by, tby);
                let y_lt = _mm_cmplt_pd(by, tby);
                // Step A: route ee·p by (cx, cy); Greater lanes match no
                // mask and add +0.0 everywhere.
                let ee_p = _mm_mul_pd(ee, p);
                nee = _mm_add_pd(nee, _mm_and_pd(ee_p, _mm_and_pd(x_eq, y_eq)));
                nel = _mm_add_pd(nel, _mm_and_pd(ee_p, _mm_and_pd(x_eq, y_lt)));
                nle = _mm_add_pd(nle, _mm_and_pd(ee_p, _mm_and_pd(x_lt, y_eq)));
                nll = _mm_add_pd(nll, _mm_and_pd(ee_p, _mm_and_pd(x_lt, y_lt)));
                // Step B: route el·p by cx.
                let el_p = _mm_mul_pd(el, p);
                nel = _mm_add_pd(nel, _mm_and_pd(el_p, x_eq));
                nll = _mm_add_pd(nll, _mm_and_pd(el_p, x_lt));
                // Step C: route le·p by cy.
                let le_p = _mm_mul_pd(le, p);
                nle = _mm_add_pd(nle, _mm_and_pd(le_p, y_eq));
                nll = _mm_add_pd(nll, _mm_and_pd(le_p, y_lt));
                // Step D: ll stays ll.
                nll = _mm_add_pd(nll, _mm_mul_pd(ll, p));
            }
            ee = nee;
            el = nel;
            le = nle;
            ll = nll;
        }
        unpack(ll)
    }
}

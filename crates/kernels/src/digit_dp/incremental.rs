//! Incremental tier: per-edge DP prefix states cached across the seed
//! schedule.
//!
//! # Why a prefix is cacheable
//!
//! The digit DP walks digits `i = b-1 .. 0` (most significant first). The
//! Lemma 2.6 drivers fix seed bits in index order, and
//! `SliceFamily::slice_of_seed_bit` is monotone nondecreasing in the
//! index — so while the schedule is inside slice `s`'s window (`m+1` seed
//! bits × 2 candidate values), `update_forms_on_fix` mutates **only**
//! `forms[s]`. Every form at a position `≠ s` is frozen for the whole
//! window, which means the DP state after processing digits `b-1 .. s+1`
//! — a literal prefix of the reference computation, touching only frozen
//! forms — is the same for all `2(m+1)` evaluations of the window. The
//! [`EdgeDpCache`] memoizes exactly that state (joint `[ee, el, le, ll]`
//! plus both marginal `[p_eq, p_lt]` pairs) and each evaluation replays
//! only digit `s` (with the candidate override) and the trailing digits
//! `s-1 .. 0`.
//!
//! # Why it is bit-identical
//!
//! No float operation is reordered, fused, or skipped relative to the
//! reference tier: the prefix state is produced by the reference
//! transition applied to the same digits in the same order, and the
//! replay continues that exact sequence. Caching only changes *when* the
//! leading steps run, not *what* they compute — so every probability, and
//! hence every leader decision and every `Report`, is bit-equal to the
//! reference (enforced by `digit_dp_oracle.rs`, `tier_equivalence.rs`,
//! and the whole-pipeline `kernel_tier_oracle`).
//!
//! The per-digit transition replicates the [`scalar`](super::scalar)
//! tier's entry emission (nonzero pmf entries in ascending pmf-index
//! order — the reference's visit order) reading [`BitForm`]s directly.
//!
//! # Cost
//!
//! A fresh evaluation is `3` DPs × `b` digits per candidate; the cached
//! replay is `3` DPs × `(s+1)` digits plus an `O(b−s)` rebuild once per
//! (edge, slice). Averaged over the schedule (slice `s` hosts `m+1` seed
//! bits), the digit work roughly halves, and the per-call
//! `PackedForms::pack` of the SoA tiers disappears entirely.

use crate::forms::BitForm;

/// Cached DP prefix states of one conflict edge: the joint and the two
/// marginal DP states after the digits above `slice` (all frozen while the
/// schedule is inside `slice`'s window). Create one per conflict edge per
/// phase; `edge_shares`/`joint_coin_probs_override` revalidate lazily on
/// the first call of each slice (or whenever the thresholds change).
#[derive(Debug, Clone)]
pub struct EdgeDpCache {
    /// Slice the prefix states were built for; `usize::MAX` = none.
    slice: usize,
    /// Thresholds the states were built for (part of the validity key, so
    /// a cache reused across phases self-corrects).
    t_u: u64,
    t_v: u64,
    /// Joint state `[ee, el, le, ll]` after digits `b-1 ..= slice+1`.
    joint: [f64; 4],
    /// Marginal state `[p_eq, p_lt]` of input `u` after the same digits.
    marg_u: [f64; 2],
    /// Marginal state of input `v`.
    marg_v: [f64; 2],
    /// Debug-only fingerprint of the frozen suffix forms: the monotone
    /// schedule contract says they must not change while `slice` is
    /// current.
    #[cfg(debug_assertions)]
    suffix_fp: u64,
}

impl EdgeDpCache {
    /// An empty cache; the first evaluation builds the prefix states.
    #[must_use]
    pub fn new() -> Self {
        EdgeDpCache {
            slice: usize::MAX,
            t_u: 0,
            t_v: 0,
            joint: [0.0; 4],
            marg_u: [0.0; 2],
            marg_v: [0.0; 2],
            #[cfg(debug_assertions)]
            suffix_fp: 0,
        }
    }

    /// Drops the cached states; the next evaluation rebuilds them. Not
    /// needed under the documented schedule (slice and threshold changes
    /// revalidate automatically) — an escape hatch for callers that mutate
    /// suffix forms out of order.
    pub fn invalidate(&mut self) {
        self.slice = usize::MAX;
    }

    fn ensure(
        &mut self,
        forms_u: &[BitForm],
        t_u: u64,
        forms_v: &[BitForm],
        t_v: u64,
        slice: usize,
    ) {
        if self.slice == slice && self.t_u == t_u && self.t_v == t_v {
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                self.suffix_fp,
                suffix_fingerprint(forms_u, forms_v, slice),
                "forms above slice {slice} changed while the slice was current — \
                 the caller broke the monotone seed-schedule contract"
            );
            return;
        }
        let b = forms_u.len();
        self.marg_u = marg_prefix(forms_u, t_u, slice, b);
        self.marg_v = marg_prefix(forms_v, t_v, slice, b);
        self.joint = joint_prefix(forms_u, t_u, forms_v, t_v, slice, b);
        self.slice = slice;
        self.t_u = t_u;
        self.t_v = t_v;
        #[cfg(debug_assertions)]
        {
            self.suffix_fp = suffix_fingerprint(forms_u, forms_v, slice);
        }
    }
}

impl Default for EdgeDpCache {
    fn default() -> Self {
        EdgeDpCache::new()
    }
}

/// Prefix cache for the marginal DP alone ([`prob_lt_override`]).
#[derive(Debug, Clone)]
pub struct MarginalDpCache {
    slice: usize,
    t: u64,
    state: [f64; 2],
}

impl MarginalDpCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        MarginalDpCache {
            slice: usize::MAX,
            t: 0,
            state: [0.0; 2],
        }
    }
}

impl Default for MarginalDpCache {
    fn default() -> Self {
        MarginalDpCache::new()
    }
}

#[cfg(debug_assertions)]
fn suffix_fingerprint(forms_u: &[BitForm], forms_v: &[BitForm], slice: usize) -> u64 {
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |f: &BitForm| {
        fp = (fp ^ f.mask ^ (u64::from(f.offset) << 1) ^ u64::from(f.s_free))
            .wrapping_mul(0x0000_0100_0000_01b3);
    };
    for f in &forms_u[slice + 1..] {
        mix(f);
    }
    for f in &forms_v[slice + 1..] {
        mix(f);
    }
    fp
}

/// One marginal DP step — the body of the reference loop, verbatim.
#[inline]
fn marg_step(st: &mut [f64; 2], p1: f64, tbit: u64) {
    if tbit == 1 {
        st[1] += st[0] * (1.0 - p1);
        st[0] *= p1;
    } else {
        st[0] *= 1.0 - p1;
    }
}

/// Marginal DP state after the digits above `slice` (`b-1 ..= slice+1`).
fn marg_prefix(forms: &[BitForm], t: u64, slice: usize, b: usize) -> [f64; 2] {
    let mut st = [1.0f64, 0.0f64];
    for i in (slice + 1..b).rev() {
        marg_step(&mut st, forms[i].prob_one(), t >> i & 1);
    }
    st
}

/// Resumes a marginal prefix: digit `slice` with the override form, then
/// the trailing digits. Precondition: `t < 2^b` (guards resolved by
/// callers, as in every tier).
fn marg_finish(mut st: [f64; 2], forms: &[BitForm], over: BitForm, t: u64, slice: usize) -> f64 {
    marg_step(&mut st, over.prob_one(), t >> slice & 1);
    for i in (0..slice).rev() {
        marg_step(&mut st, forms[i].prob_one(), t >> i & 1);
    }
    st[1]
}

/// One joint DP step: the scalar tier's entry emission (nonzero pmf
/// entries in ascending pmf-index order) and the reference transition,
/// reading the pair of [`BitForm`]s directly.
#[inline]
fn joint_step(st: &mut [f64; 4], fx: BitForm, fy: BitForm, tbx: u64, tby: u64) {
    let ox = u64::from(fx.offset);
    let oy = u64::from(fy.offset);
    let mut entries = [(0u64, 0u64, 0.0f64); 4];
    let count = match (fx.is_known(), fy.is_known()) {
        (true, true) => {
            entries[0] = (ox, oy, 1.0);
            1
        }
        (true, false) => {
            entries[0] = (ox, 0, 0.5);
            entries[1] = (ox, 1, 0.5);
            2
        }
        (false, true) => {
            entries[0] = (0, oy, 0.5);
            entries[1] = (1, oy, 0.5);
            2
        }
        (false, false) => {
            // Same slice ⇒ the forms coincide as linear maps iff the
            // r-masks do (`pair_dist_of_forms`'s Correlated case).
            if fx.mask == fy.mask {
                let d = ox ^ oy;
                entries[0] = (0, d, 0.5);
                entries[1] = (1, 1 ^ d, 0.5);
                2
            } else {
                entries[0] = (0, 0, 0.25);
                entries[1] = (0, 1, 0.25);
                entries[2] = (1, 0, 0.25);
                entries[3] = (1, 1, 0.25);
                4
            }
        }
    };
    let [ee, el, le, ll] = *st;
    let (mut nee, mut nel, mut nle, mut nll) = (0.0, 0.0, 0.0, 0.0);
    for &(bx, by, prob) in &entries[..count] {
        let cx = bx.cmp(&tbx);
        let cy = by.cmp(&tby);
        use std::cmp::Ordering::*;
        match (cx, cy) {
            (Greater, _) | (_, Greater) => {}
            (Equal, Equal) => nee += ee * prob,
            (Equal, Less) => nel += ee * prob,
            (Less, Equal) => nle += ee * prob,
            (Less, Less) => nll += ee * prob,
        }
        match cx {
            Greater => {}
            Equal => nel += el * prob,
            Less => nll += el * prob,
        }
        match cy {
            Greater => {}
            Equal => nle += le * prob,
            Less => nll += le * prob,
        }
        nll += ll * prob;
    }
    *st = [nee, nel, nle, nll];
}

/// Joint DP state after the digits above `slice`.
fn joint_prefix(
    forms_u: &[BitForm],
    t_u: u64,
    forms_v: &[BitForm],
    t_v: u64,
    slice: usize,
    b: usize,
) -> [f64; 4] {
    let mut st = [1.0f64, 0.0, 0.0, 0.0];
    for i in (slice + 1..b).rev() {
        joint_step(&mut st, forms_u[i], forms_v[i], t_u >> i & 1, t_v >> i & 1);
    }
    st
}

/// Resumes a joint prefix through digit `slice` (with the candidate
/// overrides) and the trailing digits. Precondition: both thresholds
/// `< 2^b`.
#[allow(clippy::too_many_arguments)]
fn joint_finish(
    mut st: [f64; 4],
    forms_u: &[BitForm],
    over_u: BitForm,
    t_u: u64,
    forms_v: &[BitForm],
    over_v: BitForm,
    t_v: u64,
    slice: usize,
) -> f64 {
    joint_step(&mut st, over_u, over_v, t_u >> slice & 1, t_v >> slice & 1);
    for i in (0..slice).rev() {
        joint_step(&mut st, forms_u[i], forms_v[i], t_u >> i & 1, t_v >> i & 1);
    }
    st[3]
}

/// Cached `Pr[z < t]` with position `slice` overridden by `over`. The
/// cache revalidates on slice or threshold change.
#[must_use]
pub fn prob_lt_override(
    cache: &mut MarginalDpCache,
    forms: &[BitForm],
    over: BitForm,
    t: u64,
    slice: usize,
) -> f64 {
    let b = forms.len();
    if t >= 1 << b {
        return 1.0;
    }
    if cache.slice != slice || cache.t != t {
        cache.state = marg_prefix(forms, t, slice, b);
        cache.slice = slice;
        cache.t = t;
    }
    marg_finish(cache.state, forms, over, t, slice)
}

/// Cached joint coin probabilities `[p00, p01, p10, p11]` with both
/// inputs overridden at position `slice`. Guard clauses and the combine
/// replay the reference order exactly.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn joint_coin_probs_override(
    cache: &mut EdgeDpCache,
    forms_u: &[BitForm],
    over_u: BitForm,
    t_u: u64,
    forms_v: &[BitForm],
    over_v: BitForm,
    t_v: u64,
    slice: usize,
) -> [f64; 4] {
    let b = forms_u.len();
    debug_assert_eq!(b, forms_v.len(), "inputs must share the output width");
    debug_assert!(slice < b, "slice out of range");
    let full = 1u64 << b;
    cache.ensure(forms_u, t_u, forms_v, t_v, slice);
    let p11 = if t_u >= full && t_v >= full {
        1.0
    } else if t_u >= full {
        marg_finish(cache.marg_v, forms_v, over_v, t_v, slice)
    } else if t_v >= full {
        marg_finish(cache.marg_u, forms_u, over_u, t_u, slice)
    } else {
        joint_finish(
            cache.joint,
            forms_u,
            over_u,
            t_u,
            forms_v,
            over_v,
            t_v,
            slice,
        )
    };
    let px = if t_u >= full {
        1.0
    } else {
        marg_finish(cache.marg_u, forms_u, over_u, t_u, slice)
    };
    let py = if t_v >= full {
        1.0
    } else {
        marg_finish(cache.marg_v, forms_v, over_v, t_v, slice)
    };
    let p10 = (px - p11).max(0.0);
    let p01 = (py - p11).max(0.0);
    let p00 = (1.0 - px - py + p11).max(0.0);
    [p00, p01, p10, p11]
}

/// Cached edge aggregation: both candidate values of one seed bit resume
/// the same prefix states. The combine replays
/// [`reference::edge_shares`](super::reference::edge_shares) verbatim.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn edge_shares(
    cache: &mut EdgeDpCache,
    forms_u: &[BitForm],
    over_u: [BitForm; 2],
    t_u: u64,
    k0_inv_u: f64,
    k1_inv_u: f64,
    forms_v: &[BitForm],
    over_v: [BitForm; 2],
    t_v: u64,
    k0_inv_v: f64,
    k1_inv_v: f64,
    slice: usize,
) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    for cand in [false, true] {
        let p = joint_coin_probs_override(
            cache,
            forms_u,
            over_u[usize::from(cand)],
            t_u,
            forms_v,
            over_v[usize::from(cand)],
            t_v,
            slice,
        );
        let share_u = p[3] * k1_inv_u + p[0] * k0_inv_u;
        let share_v = p[3] * k1_inv_v + p[0] * k0_inv_v;
        let base = if cand { 2 } else { 0 };
        out[base] = share_u;
        out[base + 1] = share_v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::reference;
    use super::*;

    fn form(offset: bool, mask: u64, s_free: bool) -> BitForm {
        BitForm {
            offset,
            mask,
            s_free,
        }
    }

    fn sample() -> (Vec<BitForm>, Vec<BitForm>) {
        let fx = vec![
            form(false, 0b0110, false),
            form(true, 0, false),
            form(false, 0, true),
            form(true, 0b1000, true),
        ];
        let fy = vec![
            form(true, 0b0110, false),
            form(false, 0b0001, false),
            form(true, 0, true),
            form(false, 0b1000, true),
        ];
        (fx, fy)
    }

    #[test]
    fn cached_matches_reference_bitwise_across_slices_and_thresholds() {
        let (fx, fy) = sample();
        // Both endpoints share the seed, so each override pair shares
        // `s_free` (as real fixes produced by `form_with_fix` do).
        let over_pairs = [
            (form(false, 0, false), form(true, 0, false)),
            (form(true, 0b0100, false), form(false, 0b0001, false)),
            (form(false, 0, true), form(true, 0b0010, true)),
        ];
        for slice in 0..fx.len() {
            let mut cache = EdgeDpCache::new();
            for (tx, ty) in [(11u64, 6u64), (16, 6), (3, 16), (16, 16), (0, 9), (7, 7)] {
                for &(ou, ov) in &over_pairs {
                    let got =
                        joint_coin_probs_override(&mut cache, &fx, ou, tx, &fy, ov, ty, slice);
                    let want = reference::joint_coin_probs_override(
                        &fx,
                        Some((slice, ou)),
                        tx,
                        &fy,
                        Some((slice, ov)),
                        ty,
                    );
                    assert_eq!(
                        got.map(f64::to_bits),
                        want.map(f64::to_bits),
                        "slice {slice} t=({tx},{ty})"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_edge_shares_match_reference() {
        let (fx, fy) = sample();
        let over_u = [form(false, 0, false), form(true, 0, false)];
        let over_v = [form(true, 0, false), form(false, 0, false)];
        for slice in 0..fx.len() {
            let mut cache = EdgeDpCache::new();
            // Two calls per slice: the second hits the warm cache.
            for _ in 0..2 {
                let got = edge_shares(
                    &mut cache, &fx, over_u, 11, 0.25, 0.5, &fy, over_v, 6, 0.125, 0.2, slice,
                );
                let want = reference::edge_shares(
                    &fx, over_u, 11, 0.25, 0.5, &fy, over_v, 6, 0.125, 0.2, slice,
                );
                assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "slice {slice}"
                );
            }
        }
    }

    #[test]
    fn cached_marginal_matches_reference() {
        let (fx, _) = sample();
        for slice in 0..fx.len() {
            let mut cache = MarginalDpCache::new();
            for t in [0u64, 3, 7, 11, 16] {
                for over in [form(false, 0, false), form(true, 0b0010, false)] {
                    let got = prob_lt_override(&mut cache, &fx, over, t, slice);
                    let want = reference::prob_lt_override(&fx, Some((slice, over)), t);
                    assert_eq!(got.to_bits(), want.to_bits(), "slice {slice} t {t}");
                }
            }
        }
    }
}

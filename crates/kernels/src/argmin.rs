//! Family 2: `argmin` over `f64` scores with lowest-index tie-break.
//!
//! The contract (pinned by `tests/argmin_contract.rs` here and in
//! `dcl_sim`): the result is `(best_score, best_index)` under strict `<`
//! from the seed `(f64::INFINITY, 0)` — the lowest index wins exact ties,
//! `NaN` never wins (strict `<` is false), and an empty or all-`NaN` input
//! returns `(f64::INFINITY, 0)`. Every leader decision in every scenario
//! rides on this reduction, so all tiers must agree bitwise.
//!
//! The scalar and SIMD tiers fold four interleaved accumulator lanes
//! (index classes `i mod 4`) and merge them in lane order with the
//! lexicographic rule `(v < best) ∨ (v = best ∧ i < best_i)`; trailing
//! elements fold after the merge with strict `<`. This is equivalent to
//! the reference scan: each lane retains the lowest index attaining its
//! lane minimum, the merge picks the lowest index attaining the global
//! minimum, and the remainder holds strictly larger indices. The `=`
//! comparison also makes the `±0.0` equality class tie-break by index,
//! matching the scan (which keeps the first-seen zero of either sign).

use crate::tier::{family_tier, KernelFamily, KernelTier};

/// Dispatched argmin over a score slice. Returns `(f64::INFINITY, 0)` for
/// an empty slice. Without an override the family default applies
/// (scalar — see [`crate::tier::default_family_tier`]); the `Incremental`
/// tier has no stateful argmin, so it rides the SIMD ceiling.
#[must_use]
pub fn argmin_f64(scores: &[f64]) -> (f64, usize) {
    match family_tier(KernelFamily::Argmin) {
        KernelTier::Reference => reference(scores),
        KernelTier::Scalar => scalar(scores),
        KernelTier::Simd | KernelTier::Incremental => simd(scores),
    }
}

/// The original sequential scan, moved verbatim from
/// `dcl_sim::argmin_f64`'s inner loop.
#[must_use]
pub fn reference(scores: &[f64]) -> (f64, usize) {
    let mut best = (f64::INFINITY, 0usize);
    for (i, &s) in scores.iter().enumerate() {
        if s < best.0 {
            best = (s, i);
        }
    }
    best
}

/// Merges lane minima (in lane order) and the scan tail into the final
/// result. Shared by the scalar and SIMD tiers — the proof obligation
/// lives in one place.
#[inline]
fn merge_lanes_and_tail(lanes: [(f64, usize); 4], tail: &[f64], tail_start: usize) -> (f64, usize) {
    let mut best = (f64::INFINITY, 0usize);
    for (v, i) in lanes {
        if v < best.0 || (v == best.0 && i < best.1) {
            best = (v, i);
        }
    }
    // Tail indices exceed every lane index, so strict `<` suffices.
    for (off, &s) in tail.iter().enumerate() {
        if s < best.0 {
            best = (s, tail_start + off);
        }
    }
    best
}

/// Four-accumulator unrolled scan — the scalar mirror of the SIMD lane
/// fold, autovectorization-friendly and allocation-free.
#[must_use]
pub fn scalar(scores: &[f64]) -> (f64, usize) {
    let chunks = scores.len() / 4 * 4;
    let mut lanes = [(f64::INFINITY, 0usize); 4];
    let mut i = 0;
    while i < chunks {
        for l in 0..4 {
            let s = scores[i + l];
            if s < lanes[l].0 {
                lanes[l] = (s, i + l);
            }
        }
        i += 4;
    }
    merge_lanes_and_tail(lanes, &scores[chunks..], chunks)
}

/// Explicit-SIMD tier: AVX2 four-lane fold when the CPU has it (runtime
/// detected), otherwise the scalar mirror.
#[must_use]
pub fn simd(scores: &[f64]) -> (f64, usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if scores.len() >= 8 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was verified at runtime on the line
            // above; the function uses no other unchecked features.
            return unsafe { avx2::argmin(scores) };
        }
    }
    scalar(scores)
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::merge_lanes_and_tail;
    use std::arch::x86_64::{
        _mm256_add_epi64, _mm256_blendv_epi8, _mm256_blendv_pd, _mm256_castpd256_pd128,
        _mm256_castpd_si256, _mm256_castsi256_si128, _mm256_cmp_pd, _mm256_extractf128_pd,
        _mm256_extracti128_si256, _mm256_set1_epi64x, _mm256_set1_pd, _mm256_set_epi64x,
        _mm256_set_pd, _mm_cvtsd_f64, _mm_cvtsi128_si64, _mm_unpackhi_epi64, _mm_unpackhi_pd,
        _CMP_LT_OQ,
    };

    /// Vertical strict-`<` fold over index classes `i mod 4`, then the
    /// shared lane-order merge. Lanes that never improve keep the seed
    /// `(INFINITY, 0)`, which the merge treats exactly like the scan's
    /// untouched initial state.
    #[target_feature(enable = "avx2")]
    pub(super) fn argmin(scores: &[f64]) -> (f64, usize) {
        let chunks = scores.len() / 4 * 4;
        let mut vals = _mm256_set1_pd(f64::INFINITY);
        let mut idxs = _mm256_set1_epi64x(0);
        let mut cur = _mm256_set_epi64x(3, 2, 1, 0);
        let step = _mm256_set1_epi64x(4);
        let mut i = 0;
        while i < chunks {
            let v = _mm256_set_pd(scores[i + 3], scores[i + 2], scores[i + 1], scores[i]);
            // Ordered strict less-than: false for NaN lanes, so NaN never
            // replaces a lane minimum — same as the scalar `<`.
            let m = _mm256_cmp_pd::<_CMP_LT_OQ>(v, vals);
            vals = _mm256_blendv_pd(vals, v, m);
            idxs = _mm256_blendv_epi8(idxs, cur, _mm256_castpd_si256(m));
            cur = _mm256_add_epi64(cur, step);
            i += 4;
        }
        let vlo = _mm256_castpd256_pd128(vals);
        let vhi = _mm256_extractf128_pd::<1>(vals);
        let ilo = _mm256_castsi256_si128(idxs);
        let ihi = _mm256_extracti128_si256::<1>(idxs);
        let lanes = [
            (_mm_cvtsd_f64(vlo), _mm_cvtsi128_si64(ilo) as usize),
            (
                _mm_cvtsd_f64(_mm_unpackhi_pd(vlo, vlo)),
                _mm_cvtsi128_si64(_mm_unpackhi_epi64(ilo, ilo)) as usize,
            ),
            (_mm_cvtsd_f64(vhi), _mm_cvtsi128_si64(ihi) as usize),
            (
                _mm_cvtsd_f64(_mm_unpackhi_pd(vhi, vhi)),
                _mm_cvtsi128_si64(_mm_unpackhi_epi64(ihi, ihi)) as usize,
            ),
        ];
        merge_lanes_and_tail(lanes, &scores[chunks..], chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all_nan() {
        for f in [reference, scalar, simd] {
            assert_eq!(f(&[]), (f64::INFINITY, 0));
            let (v, i) = f(&[f64::NAN; 9]);
            assert!(v.is_infinite() && v > 0.0);
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let scores = [3.0, 1.0, 2.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0];
        for f in [reference, scalar, simd] {
            assert_eq!(f(&scores), (1.0, 1));
        }
    }

    #[test]
    fn signed_zero_ties_keep_first_seen_value() {
        let scores = [2.0, 0.0, -0.0, 1.0, -0.0, 0.0, 4.0, 9.0, 9.0];
        let anchor = reference(&scores);
        assert_eq!(anchor.1, 1);
        for f in [scalar, simd] {
            let got = f(&scores);
            assert_eq!(got.1, anchor.1);
            assert_eq!(got.0.to_bits(), anchor.0.to_bits());
        }
    }

    #[test]
    fn minimum_in_tail_wins() {
        let mut scores = vec![5.0; 13];
        scores[12] = -1.0;
        for f in [reference, scalar, simd] {
            assert_eq!(f(&scores), (-1.0, 12));
        }
    }
}

//! Family 1: the Lemma 2.6 pair-probability digit DP and its per-edge
//! aggregation.
//!
//! This is ~90% of Theorem 1.1 runtime: every conflict edge × every seed
//! bit × both candidate values runs the exact `O(b)` digit DP over the
//! joint distribution of two hash outputs. The public functions here are
//! the dispatch layer; the four tiers live in the submodules:
//!
//! - [`mod@reference`] — `SliceFamily::{prob_lt_override,
//!   prob_joint_lt_override, joint_coin_probs_override}` and the drivers'
//!   edge aggregation, moved verbatim from `dcl_derand::slice` /
//!   `dcl_core::derand_step`.
//! - [`scalar`] — the forms repacked once per call into an SoA batch
//!   ([`PackedForms`]: `mask` array + `known`/`offset` bitsets), the
//!   per-digit case split resolved by integer bit tests, and the DP
//!   transition replaying the reference's float operations in the
//!   reference's order — bit-identical by construction, with no allocation
//!   and no per-position override branch.
//! - [`simd`] — independent DP instances paired into SSE2 lanes (the two
//!   candidate values of one seed bit, the two marginals of one edge, the
//!   CDF corners of one interval). Per-lane IEEE ops equal the scalar ops;
//!   masked-out contributions add `+0.0`, which preserves accumulator bits
//!   because every term is finite and non-negative. Off x86_64 the tier
//!   falls back to [`scalar`].
//! - [`incremental`] — stateful prefix-cached evaluation for callers that
//!   fix seed bits in the monotone slice schedule ([`EdgeDpCache`]): the
//!   DP state over the leading digits `b-1..s+1` is invariant for the
//!   whole window of slice `s`, so each evaluation replays only the
//!   overridden digit plus the trailing `s` digits, in the reference
//!   association order. Bit-identical because the cached prefix is a
//!   literal memo of the reference computation's first `b-1-s` steps.
//!
//! Thresholds may be up to `2^b` *inclusive* (the reference's guard
//! clauses); `b` is the forms-slice length, at most 63 (`SliceFamily`
//! enforces this upstream).

use crate::forms::{BitForm, PairDist};
use crate::tier::{family_tier, KernelFamily, KernelTier};

pub mod incremental;
pub mod reference;
pub mod scalar;
pub mod simd;

pub use incremental::EdgeDpCache;

#[inline]
fn tier() -> KernelTier {
    family_tier(KernelFamily::DigitDp)
}

/// SoA repack of one input's `b` bit forms: the free-variable masks as an
/// array, the known/offset/s-free flags as bitsets. The scalar and SIMD
/// tiers read digits from this layout with integer bit tests instead of
/// per-position struct loads, and the drivers keep one `PackedForms` per
/// node updated in place across seed fixes
/// (`SliceFamily::update_packed_on_fix`), so the per-call pack loop
/// disappears from the hot path.
#[derive(Debug, Clone)]
pub struct PackedForms {
    /// Number of digits (= forms.len()).
    pub(crate) b: usize,
    /// `masks[i]` = free positions of `r_i` where the input has a 1 bit.
    pub(crate) masks: [u64; 64],
    /// Bit `i` set iff form `i` is fully determined.
    pub(crate) known: u64,
    /// Bit `i` = offset of form `i`.
    pub(crate) offset: u64,
    /// Bit `i` set iff form `i`'s `s` bit is still free. Not read by the
    /// DP (it folds into `known`), but needed to reconstruct the
    /// [`BitForm`] at a position for in-place updates.
    pub(crate) s_free: u64,
}

/// Internal alias: the submodules predate the public name.
pub(crate) use PackedForms as Soa;

impl PackedForms {
    pub(crate) fn pack(forms: &[BitForm], over: Option<(usize, BitForm)>) -> PackedForms {
        debug_assert!(forms.len() < 64, "digit DP supports at most 63 digits");
        let mut s = PackedForms {
            b: forms.len(),
            masks: [0; 64],
            known: 0,
            offset: 0,
            s_free: 0,
        };
        for (i, form) in forms.iter().enumerate() {
            let f = match over {
                Some((oi, o)) if oi == i => o,
                _ => *form,
            };
            s.masks[i] = f.mask;
            if f.is_known() {
                s.known |= 1 << i;
            }
            if f.offset {
                s.offset |= 1 << i;
            }
            if f.s_free {
                s.s_free |= 1 << i;
            }
        }
        s
    }

    /// Packs `forms` (index `i` = output bit `i`). Panics in debug builds
    /// when `forms.len() ≥ 64`.
    #[must_use]
    pub fn from_forms(forms: &[BitForm]) -> PackedForms {
        PackedForms::pack(forms, None)
    }

    /// Number of digits.
    #[must_use]
    pub fn digits(&self) -> usize {
        self.b
    }

    /// The bit form at position `i`, reconstructed from the bitsets.
    #[must_use]
    pub fn form(&self, i: usize) -> BitForm {
        debug_assert!(i < self.b, "digit index out of range");
        BitForm {
            offset: self.offset >> i & 1 == 1,
            mask: self.masks[i],
            s_free: self.s_free >> i & 1 == 1,
        }
    }

    /// Replaces the form at position `i` — the O(1) counterpart of
    /// repacking after `SliceFamily::update_forms_on_fix`.
    pub fn set_form(&mut self, i: usize, f: BitForm) {
        debug_assert!(i < self.b, "digit index out of range");
        let bit = 1u64 << i;
        self.masks[i] = f.mask;
        self.known = self.known & !bit | u64::from(f.is_known()) << i;
        self.offset = self.offset & !bit | u64::from(f.offset) << i;
        self.s_free = self.s_free & !bit | u64::from(f.s_free) << i;
    }

    /// Marginal probability that digit `i` equals 1 — same values as
    /// [`BitForm::prob_one`], read from the bitsets.
    #[inline]
    pub(crate) fn prob_one(&self, i: usize) -> f64 {
        if self.known >> i & 1 == 1 {
            if self.offset >> i & 1 == 1 {
                1.0
            } else {
                0.0
            }
        } else {
            0.5
        }
    }
}

/// The joint pmf of digit `i` of the two inputs, `[q00, q01, q10, q11]` —
/// the same five-case split as [`pair_dist_of_forms`], decided from the SoA
/// bitsets.
///
/// [`pair_dist_of_forms`]: crate::forms::pair_dist_of_forms
#[inline]
pub(crate) fn pmf_at(sx: &Soa, sy: &Soa, i: usize) -> [f64; 4] {
    let kx = sx.known >> i & 1 == 1;
    let ky = sy.known >> i & 1 == 1;
    let ox = sx.offset >> i & 1 == 1;
    let oy = sy.offset >> i & 1 == 1;
    let dist = match (kx, ky) {
        (true, true) => PairDist::BothKnown(ox, oy),
        (true, false) => PairDist::FirstKnown(ox),
        (false, true) => PairDist::SecondKnown(oy),
        (false, false) if sx.masks[i] == sy.masks[i] => PairDist::Correlated(ox ^ oy),
        (false, false) => PairDist::Independent,
    };
    dist.pmf()
}

/// `Pr[z < t]` over the free bits of `forms`, with position `i` replaced by
/// `f` when `over = Some((i, f))`. `t` may be `2^b` (inclusive) → 1.
#[must_use]
pub fn prob_lt_override(forms: &[BitForm], over: Option<(usize, BitForm)>, t: u64) -> f64 {
    match tier() {
        KernelTier::Reference => reference::prob_lt_override(forms, over, t),
        // A single marginal DP has nothing to pair into lanes and no state
        // to reuse; the SIMD and incremental tiers share the SoA path.
        KernelTier::Scalar | KernelTier::Simd | KernelTier::Incremental => {
            scalar::prob_lt(&Soa::pack(forms, over), t)
        }
    }
}

/// `Pr[z < t]` without an override.
#[must_use]
pub fn prob_lt(forms: &[BitForm], t: u64) -> f64 {
    prob_lt_override(forms, None, t)
}

/// `Pr[z_x < t_x ∧ z_y < t_y]` over the shared free seed bits, with
/// per-input single-position overrides.
#[must_use]
pub fn prob_joint_lt_override(
    forms_x: &[BitForm],
    over_x: Option<(usize, BitForm)>,
    t_x: u64,
    forms_y: &[BitForm],
    over_y: Option<(usize, BitForm)>,
    t_y: u64,
) -> f64 {
    match tier() {
        KernelTier::Reference => {
            reference::prob_joint_lt_override(forms_x, over_x, t_x, forms_y, over_y, t_y)
        }
        // One joint DP is one instance; pairing happens at the aggregation
        // entry points (edge_shares, joint_interval).
        KernelTier::Scalar | KernelTier::Simd | KernelTier::Incremental => scalar::prob_joint_lt(
            &Soa::pack(forms_x, over_x),
            t_x,
            &Soa::pack(forms_y, over_y),
            t_y,
        ),
    }
}

/// `Pr[z_x < t_x ∧ z_y < t_y]` without overrides.
#[must_use]
pub fn prob_joint_lt(forms_x: &[BitForm], t_x: u64, forms_y: &[BitForm], t_y: u64) -> f64 {
    prob_joint_lt_override(forms_x, None, t_x, forms_y, None, t_y)
}

/// Joint threshold-coin probabilities `[p00, p01, p10, p11]` with per-input
/// single-position overrides.
#[must_use]
pub fn joint_coin_probs_override(
    forms_x: &[BitForm],
    over_x: Option<(usize, BitForm)>,
    t_x: u64,
    forms_y: &[BitForm],
    over_y: Option<(usize, BitForm)>,
    t_y: u64,
) -> [f64; 4] {
    match tier() {
        KernelTier::Reference => {
            reference::joint_coin_probs_override(forms_x, over_x, t_x, forms_y, over_y, t_y)
        }
        // Stateless call: the incremental tier has no cache here; the
        // scalar path is the measured-fastest stateless evaluation.
        KernelTier::Scalar | KernelTier::Incremental => scalar::joint_coin_probs(
            &Soa::pack(forms_x, over_x),
            t_x,
            &Soa::pack(forms_y, over_y),
            t_y,
        ),
        KernelTier::Simd => simd::joint_coin_probs(
            &Soa::pack(forms_x, over_x),
            t_x,
            &Soa::pack(forms_y, over_y),
            t_y,
        ),
    }
}

/// Joint threshold-coin probabilities without overrides.
#[must_use]
pub fn joint_coin_probs(forms_x: &[BitForm], t_x: u64, forms_y: &[BitForm], t_y: u64) -> [f64; 4] {
    joint_coin_probs_override(forms_x, None, t_x, forms_y, None, t_y)
}

/// [`joint_coin_probs`] on pre-packed inputs — the drivers' scratch forms
/// live in the SoA layout, so no per-call pack happens. Under the
/// `reference` tier this dispatches to the scalar transition, which is
/// proven bit-identical to the reference AoS loop, so `Report` equality
/// across tiers is preserved.
#[must_use]
pub fn joint_coin_probs_packed(sx: &PackedForms, t_x: u64, sy: &PackedForms, t_y: u64) -> [f64; 4] {
    match tier() {
        KernelTier::Reference | KernelTier::Scalar | KernelTier::Incremental => {
            scalar::joint_coin_probs(sx, t_x, sy, t_y)
        }
        KernelTier::Simd => simd::joint_coin_probs(sx, t_x, sy, t_y),
    }
}

/// Conditional expectations of one conflict edge for one seed bit:
/// `[x⁰ share of u, x⁰ share of v, x¹ share of u, x¹ share of v]`.
///
/// `over_u[c]` / `over_v[c]` are the endpoint forms at position `slice`
/// with the seed bit under evaluation fixed to candidate value `c` (the
/// caller computes them via `SliceFamily::form_with_fix`, keeping the
/// kernel independent of the seed layout). This is the innermost function
/// of the whole system — the dominant work of every scenario.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn edge_shares(
    forms_u: &[BitForm],
    over_u: [BitForm; 2],
    t_u: u64,
    k0_inv_u: f64,
    k1_inv_u: f64,
    forms_v: &[BitForm],
    over_v: [BitForm; 2],
    t_v: u64,
    k0_inv_v: f64,
    k1_inv_v: f64,
    slice: usize,
) -> [f64; 4] {
    match tier() {
        KernelTier::Reference => reference::edge_shares(
            forms_u, over_u, t_u, k0_inv_u, k1_inv_u, forms_v, over_v, t_v, k0_inv_v, k1_inv_v,
            slice,
        ),
        KernelTier::Scalar => scalar::edge_shares(
            forms_u, over_u, t_u, k0_inv_u, k1_inv_u, forms_v, over_v, t_v, k0_inv_v, k1_inv_v,
            slice,
        ),
        // Stateless call: without a cache the incremental tier uses the
        // candidate-lane SIMD path (measured fastest stateless tier).
        KernelTier::Simd | KernelTier::Incremental => simd::edge_shares(
            forms_u, over_u, t_u, k0_inv_u, k1_inv_u, forms_v, over_v, t_v, k0_inv_v, k1_inv_v,
            slice,
        ),
    }
}

/// [`edge_shares`] with a per-edge DP prefix cache. The Lemma 2.6 drivers
/// own one [`EdgeDpCache`] per conflict edge for the duration of a phase
/// and pass it here per seed bit; under the `incremental` tier the cache
/// skips the invariant leading digits (see [`incremental`]), under every
/// other tier the cache is ignored and the stateless [`edge_shares`] of
/// that tier runs — so forcing a tier still exercises that tier's code.
///
/// Contract (checked in debug builds): the caller fixes seed bits in
/// monotone slice order and reuses one cache per (edge, thresholds) pair;
/// forms at positions `> slice` must not change while `slice` is current.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn edge_shares_cached(
    cache: &mut EdgeDpCache,
    forms_u: &[BitForm],
    over_u: [BitForm; 2],
    t_u: u64,
    k0_inv_u: f64,
    k1_inv_u: f64,
    forms_v: &[BitForm],
    over_v: [BitForm; 2],
    t_v: u64,
    k0_inv_v: f64,
    k1_inv_v: f64,
    slice: usize,
) -> [f64; 4] {
    match tier() {
        KernelTier::Incremental => incremental::edge_shares(
            cache, forms_u, over_u, t_u, k0_inv_u, k1_inv_u, forms_v, over_v, t_v, k0_inv_v,
            k1_inv_v, slice,
        ),
        _ => edge_shares(
            forms_u, over_u, t_u, k0_inv_u, k1_inv_u, forms_v, over_v, t_v, k0_inv_v, k1_inv_v,
            slice,
        ),
    }
}

/// `Pr[z_u ∈ [ul, uh) ∧ z_v ∈ [vl, vh)]` by inclusion–exclusion over the
/// joint CDF, in the fixed combine order
/// `(J(uh,vh) − J(ul,vh) − J(uh,vl) + J(ul,vl)).max(0)` — the order both
/// the CONGESTED CLIQUE driver and the MPC finisher used before the
/// extraction, so the kernel serves both call sites bit-identically.
#[must_use]
pub fn joint_interval(
    forms_u: &[BitForm],
    ul: u64,
    uh: u64,
    forms_v: &[BitForm],
    vl: u64,
    vh: u64,
) -> f64 {
    match tier() {
        KernelTier::Reference => reference::joint_interval(forms_u, ul, uh, forms_v, vl, vh),
        KernelTier::Scalar => scalar::joint_interval(forms_u, ul, uh, forms_v, vl, vh),
        KernelTier::Simd | KernelTier::Incremental => {
            simd::joint_interval(forms_u, ul, uh, forms_v, vl, vh)
        }
    }
}

/// [`joint_interval`] on pre-packed inputs. The clique/MPC drivers keep
/// their per-candidate scratch forms packed and call this once per digit
/// interval, eliminating the two `PackedForms::pack` loops per call that
/// used to dominate the segmented-derandomization profile. Bit-identity
/// across tiers holds as for [`joint_coin_probs_packed`].
#[must_use]
pub fn joint_interval_packed(
    su: &PackedForms,
    ul: u64,
    uh: u64,
    sv: &PackedForms,
    vl: u64,
    vh: u64,
) -> f64 {
    match tier() {
        KernelTier::Reference | KernelTier::Scalar => {
            scalar::joint_interval_packed(su, ul, uh, sv, vl, vh)
        }
        KernelTier::Simd | KernelTier::Incremental => {
            simd::joint_interval_packed(su, ul, uh, sv, vl, vh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forms::pair_dist_of_forms;
    use crate::tier::{clear_active_tier, set_active_tier};

    fn form(offset: bool, mask: u64, s_free: bool) -> BitForm {
        BitForm {
            offset,
            mask,
            s_free,
        }
    }

    fn sample_forms() -> (Vec<BitForm>, Vec<BitForm>) {
        let fx = vec![
            form(false, 0b0110, false),
            form(true, 0, false),
            form(false, 0, true),
            form(true, 0b1000, true),
        ];
        let fy = vec![
            form(true, 0b0110, false),
            form(false, 0b0001, false),
            form(true, 0, true),
            form(false, 0b1000, true),
        ];
        (fx, fy)
    }

    #[test]
    fn all_tiers_agree_on_sample() {
        let (fx, fy) = sample_forms();
        let anchor = reference::prob_joint_lt_override(&fx, None, 11, &fy, None, 6);
        for t in KernelTier::all() {
            set_active_tier(t);
            assert_eq!(
                prob_joint_lt(&fx, 11, &fy, 6).to_bits(),
                anchor.to_bits(),
                "tier {}",
                t.name()
            );
            assert_eq!(
                joint_coin_probs(&fx, 11, &fy, 6).map(f64::to_bits),
                reference::joint_coin_probs_override(&fx, None, 11, &fy, None, 6).map(f64::to_bits),
                "tier {}",
                t.name()
            );
        }
        clear_active_tier();
    }

    #[test]
    fn guards_handle_inclusive_thresholds() {
        let (fx, fy) = sample_forms();
        for t in KernelTier::all() {
            set_active_tier(t);
            assert_eq!(prob_joint_lt(&fx, 16, &fy, 16), 1.0);
            assert_eq!(prob_lt(&fx, 16), 1.0);
            assert_eq!(
                prob_joint_lt(&fx, 16, &fy, 5).to_bits(),
                prob_lt(&fy, 5).to_bits()
            );
            assert_eq!(
                prob_joint_lt(&fx, 7, &fy, 16).to_bits(),
                prob_lt(&fx, 7).to_bits()
            );
        }
        clear_active_tier();
    }

    #[test]
    fn pmf_at_matches_pair_dist_of_forms() {
        let (fx, fy) = sample_forms();
        let sx = Soa::pack(&fx, None);
        let sy = Soa::pack(&fy, None);
        for i in 0..fx.len() {
            assert_eq!(
                pmf_at(&sx, &sy, i),
                pair_dist_of_forms(fx[i], fy[i]).pmf(),
                "digit {i}"
            );
        }
    }

    #[test]
    fn packed_form_roundtrip_and_set() {
        let (fx, fy) = sample_forms();
        let mut packed = PackedForms::from_forms(&fx);
        assert_eq!(packed.digits(), fx.len());
        for (i, &f) in fx.iter().enumerate() {
            assert_eq!(packed.form(i), f, "position {i}");
        }
        // Overwrite every position with fy's form; the result must equal a
        // fresh pack of fy, including the known-bit recomputation.
        for (i, &f) in fy.iter().enumerate() {
            packed.set_form(i, f);
        }
        let fresh = PackedForms::from_forms(&fy);
        assert_eq!(packed.known, fresh.known);
        assert_eq!(packed.offset, fresh.offset);
        assert_eq!(packed.s_free, fresh.s_free);
        assert_eq!(packed.masks, fresh.masks);
    }

    #[test]
    fn packed_entry_points_match_aos() {
        let (fx, fy) = sample_forms();
        let sx = PackedForms::from_forms(&fx);
        let sy = PackedForms::from_forms(&fy);
        for t in KernelTier::all() {
            set_active_tier(t);
            for (tx, ty) in [(11u64, 6u64), (16, 6), (3, 16), (16, 16), (0, 9)] {
                assert_eq!(
                    joint_coin_probs_packed(&sx, tx, &sy, ty).map(f64::to_bits),
                    joint_coin_probs(&fx, tx, &fy, ty).map(f64::to_bits),
                    "tier {} t=({tx},{ty})",
                    t.name()
                );
            }
            for (ul, uh, vl, vh) in [(2u64, 9u64, 1u64, 7u64), (0, 16, 3, 12), (5, 5, 0, 16)] {
                assert_eq!(
                    joint_interval_packed(&sx, ul, uh, &sy, vl, vh).to_bits(),
                    joint_interval(&fx, ul, uh, &fy, vl, vh).to_bits(),
                    "tier {} interval ({ul},{uh})x({vl},{vh})",
                    t.name()
                );
            }
        }
        clear_active_tier();
    }
}

//! The affine bit forms and pair distributions the digit DP consumes.
//!
//! Moved verbatim from `dcl_derand::slice` (which re-exports them, so
//! existing imports keep working): the kernels crate sits *below*
//! `dcl_derand` in the dependency order, and the DP tiers need these types
//! without a cycle.

/// Affine form of one output bit over the free seed bits of its slice:
/// `bit = offset ⊕ ⟨free r-vars selected by mask⟩ (⊕ s if s_free)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitForm {
    /// XOR of all already-fixed contributions.
    pub offset: bool,
    /// Free positions of `r_i` where the input has a 1 bit.
    pub mask: u64,
    /// Whether `s_i` is still free.
    pub s_free: bool,
}

impl BitForm {
    /// Whether the bit's value is fully determined.
    pub fn is_known(&self) -> bool {
        self.mask == 0 && !self.s_free
    }

    /// Marginal probability that the bit equals 1.
    pub fn prob_one(&self) -> f64 {
        if self.is_known() {
            if self.offset {
                1.0
            } else {
                0.0
            }
        } else {
            0.5
        }
    }
}

/// Joint distribution of a pair of output bits at one position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairDist {
    /// Both bits determined.
    BothKnown(bool, bool),
    /// First bit determined, second uniform.
    FirstKnown(bool),
    /// Second bit determined, first uniform.
    SecondKnown(bool),
    /// First uniform; second = first ⊕ d.
    Correlated(bool),
    /// Jointly uniform on `{0,1}²`.
    Independent,
}

impl PairDist {
    /// Joint pmf as `[q00, q01, q10, q11]` (`q_{uv}` = Pr\[first = u, second = v\]).
    pub fn pmf(&self) -> [f64; 4] {
        match *self {
            PairDist::BothKnown(a, b) => {
                let mut q = [0.0; 4];
                q[(usize::from(a) << 1) | usize::from(b)] = 1.0;
                q
            }
            PairDist::FirstKnown(a) => {
                let mut q = [0.0; 4];
                q[usize::from(a) << 1] = 0.5;
                q[(usize::from(a) << 1) | 1] = 0.5;
                q
            }
            PairDist::SecondKnown(b) => {
                let mut q = [0.0; 4];
                q[usize::from(b)] = 0.5;
                q[2 | usize::from(b)] = 0.5;
                q
            }
            PairDist::Correlated(d) => {
                let mut q = [0.0; 4];
                q[usize::from(d)] = 0.5; // first = 0, second = d
                q[2 | usize::from(!d)] = 0.5; // first = 1, second = !d
                q
            }
            PairDist::Independent => [0.25; 4],
        }
    }
}

/// Joint distribution of two bit forms *from the same slice* (i.e. sharing
/// the slice's free variables under one partial seed).
#[must_use]
pub fn pair_dist_of_forms(fx: BitForm, fy: BitForm) -> PairDist {
    debug_assert_eq!(
        fx.s_free, fy.s_free,
        "forms must come from the same slice and seed"
    );
    match (fx.is_known(), fy.is_known()) {
        (true, true) => PairDist::BothKnown(fx.offset, fy.offset),
        (true, false) => PairDist::FirstKnown(fx.offset),
        (false, true) => PairDist::SecondKnown(fy.offset),
        (false, false) => {
            // Same slice ⇒ the `s_i` coefficient is identical in both forms,
            // so the affine forms coincide as linear maps iff the r-masks do.
            if fx.mask == fy.mask {
                PairDist::Correlated(fx.offset ^ fy.offset)
            } else {
                PairDist::Independent
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREE: BitForm = BitForm {
        offset: false,
        mask: 0b10,
        s_free: false,
    };

    fn known(offset: bool) -> BitForm {
        BitForm {
            offset,
            mask: 0,
            s_free: false,
        }
    }

    #[test]
    fn pmfs_are_distributions() {
        for dist in [
            PairDist::BothKnown(true, false),
            PairDist::FirstKnown(true),
            PairDist::SecondKnown(false),
            PairDist::Correlated(true),
            PairDist::Independent,
        ] {
            let q = dist.pmf();
            assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-15);
            assert!(q.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn pair_dist_case_split() {
        assert_eq!(
            pair_dist_of_forms(known(true), known(false)),
            PairDist::BothKnown(true, false)
        );
        assert_eq!(
            pair_dist_of_forms(known(true), FREE),
            PairDist::FirstKnown(true)
        );
        assert_eq!(
            pair_dist_of_forms(FREE, known(false)),
            PairDist::SecondKnown(false)
        );
        assert_eq!(pair_dist_of_forms(FREE, FREE), PairDist::Correlated(false));
        let other = BitForm {
            offset: true,
            mask: 0b01,
            s_free: false,
        };
        assert_eq!(pair_dist_of_forms(FREE, other), PairDist::Independent);
    }
}

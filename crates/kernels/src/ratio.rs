//! Family 3 (continued): ratio and reciprocal arithmetic on counter pairs.
//!
//! The potential function `Φ(v) = conflict_degree(v) / |candidates(v)|`
//! and the per-label shares `1 / |L_ℓ(v)|` are the only float divisions in
//! the hot paths. The single-value helpers are shared by all tiers —
//! division is correctly rounded under IEEE 754, so there is exactly one
//! valid bit pattern per input and nothing to prove. The batch entry
//! points are dispatched so the per-phase setup loops (one division per
//! node) can vectorize; the SIMD tier zeroes `k = 0` lanes with a compare
//! mask instead of a branch, which is bitwise the same `0.0`.

use crate::tier::{family_tier, KernelFamily, KernelTier};

/// `num / den` as `f64`. The caller asserts `den > 0` (the potential is
/// undefined for a node with no candidates).
#[must_use]
pub fn ratio(num: usize, den: usize) -> f64 {
    num as f64 / den as f64
}

/// `1 / k`, or `0.0` when `k == 0` (an empty label list contributes no
/// share).
#[must_use]
pub fn recip_or_zero(k: usize) -> f64 {
    if k > 0 {
        1.0 / k as f64
    } else {
        0.0
    }
}

/// Writes `recip_or_zero(ks[i])` into `out[i]` for every `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn recip_batch(ks: &[usize], out: &mut [f64]) {
    assert_eq!(ks.len(), out.len(), "batch slices must have equal length");
    match family_tier(KernelFamily::Ratio) {
        KernelTier::Reference => {
            for (k, o) in ks.iter().zip(out.iter_mut()) {
                *o = recip_or_zero(*k);
            }
        }
        KernelTier::Scalar => recip_scalar(ks, out),
        KernelTier::Simd | KernelTier::Incremental => {
            #[cfg(target_arch = "x86_64")]
            {
                if ks.len() >= 4 {
                    // SAFETY: SSE2 is part of the x86_64 baseline, so the
                    // target feature is always available here.
                    unsafe { sse2::recip_batch(ks, out) };
                    return;
                }
            }
            recip_scalar(ks, out);
        }
    }
}

/// Writes `nums[i] as f64 / dens[i] as f64` into `out[i]` for every `i`.
/// All denominators must be positive (callers assert this per node).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn ratio_batch(nums: &[usize], dens: &[usize], out: &mut [f64]) {
    assert_eq!(
        nums.len(),
        dens.len(),
        "batch slices must have equal length"
    );
    assert_eq!(nums.len(), out.len(), "batch slices must have equal length");
    match family_tier(KernelFamily::Ratio) {
        KernelTier::Reference => {
            for i in 0..nums.len() {
                out[i] = ratio(nums[i], dens[i]);
            }
        }
        KernelTier::Scalar => ratio_scalar(nums, dens, out),
        KernelTier::Simd | KernelTier::Incremental => {
            #[cfg(target_arch = "x86_64")]
            {
                if nums.len() >= 4 {
                    // SAFETY: SSE2 is part of the x86_64 baseline, so the
                    // target feature is always available here.
                    unsafe { sse2::ratio_batch(nums, dens, out) };
                    return;
                }
            }
            ratio_scalar(nums, dens, out);
        }
    }
}

fn recip_scalar(ks: &[usize], out: &mut [f64]) {
    for (k, o) in ks.iter().zip(out.iter_mut()) {
        *o = if *k > 0 { 1.0 / *k as f64 } else { 0.0 };
    }
}

fn ratio_scalar(nums: &[usize], dens: &[usize], out: &mut [f64]) {
    for i in 0..nums.len() {
        out[i] = nums[i] as f64 / dens[i] as f64;
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::{
        _mm_and_pd, _mm_cmpgt_pd, _mm_cvtsd_f64, _mm_div_pd, _mm_set1_pd, _mm_set_pd,
        _mm_unpackhi_pd,
    };

    /// Two reciprocals per iteration: `divpd` of 1.0 by the exact `f64`
    /// conversions, with `k > 0` compare masks zeroing empty-list lanes.
    /// The `usize → f64` conversion runs scalar (the counts are small and
    /// exact; correctness over cleverness).
    #[target_feature(enable = "sse2")]
    pub(super) fn recip_batch(ks: &[usize], out: &mut [f64]) {
        let one = _mm_set1_pd(1.0);
        let zero = _mm_set1_pd(0.0);
        let chunks = ks.len() / 2 * 2;
        let mut i = 0;
        while i < chunks {
            let k = _mm_set_pd(ks[i + 1] as f64, ks[i] as f64);
            let mask = _mm_cmpgt_pd(k, zero);
            let r = _mm_and_pd(_mm_div_pd(one, k), mask);
            out[i] = _mm_cvtsd_f64(r);
            out[i + 1] = _mm_cvtsd_f64(_mm_unpackhi_pd(r, r));
            i += 2;
        }
        if i < ks.len() {
            out[i] = if ks[i] > 0 { 1.0 / ks[i] as f64 } else { 0.0 };
        }
    }

    /// Two ratios per iteration; denominators are caller-asserted positive.
    #[target_feature(enable = "sse2")]
    pub(super) fn ratio_batch(nums: &[usize], dens: &[usize], out: &mut [f64]) {
        let chunks = nums.len() / 2 * 2;
        let mut i = 0;
        while i < chunks {
            let n = _mm_set_pd(nums[i + 1] as f64, nums[i] as f64);
            let d = _mm_set_pd(dens[i + 1] as f64, dens[i] as f64);
            let r = _mm_div_pd(n, d);
            out[i] = _mm_cvtsd_f64(r);
            out[i + 1] = _mm_cvtsd_f64(_mm_unpackhi_pd(r, r));
            i += 2;
        }
        if i < nums.len() {
            out[i] = nums[i] as f64 / dens[i] as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{clear_active_tier, set_active_tier, KernelTier};

    #[test]
    fn single_value_helpers() {
        assert_eq!(ratio(3, 4), 0.75);
        assert_eq!(recip_or_zero(0), 0.0);
        assert_eq!(recip_or_zero(8), 0.125);
    }

    #[test]
    fn batches_match_singles_across_tiers() {
        let ks: Vec<usize> = (0..37).map(|i| i * 7 % 11).collect();
        let nums: Vec<usize> = (0..37).map(|i| i * 13 % 29).collect();
        let dens: Vec<usize> = (0..37).map(|i| 1 + i * 5 % 17).collect();
        let want_recip: Vec<u64> = ks.iter().map(|&k| recip_or_zero(k).to_bits()).collect();
        let want_ratio: Vec<u64> = nums
            .iter()
            .zip(&dens)
            .map(|(&n, &d)| ratio(n, d).to_bits())
            .collect();
        for tier in KernelTier::all() {
            set_active_tier(tier);
            let mut out = vec![0.0f64; ks.len()];
            recip_batch(&ks, &mut out);
            let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want_recip, "recip tier {}", tier.name());
            ratio_batch(&nums, &dens, &mut out);
            let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want_ratio, "ratio tier {}", tier.name());
        }
        clear_active_tier();
    }
}

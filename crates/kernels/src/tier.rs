//! Tier selection: one dispatch decision per process.
//!
//! The decision order is
//!
//! 1. [`set_active_tier`] — an explicit in-process override (tests force
//!    each tier this way without re-spawning);
//! 2. the `DCL_KERNEL_TIER` environment variable (`reference`, `scalar`
//!    or `simd`), read once on first use;
//! 3. runtime CPU detection: `simd` on x86_64 (SSE2 is part of the
//!    x86_64 baseline, wider extensions are probed per kernel), `scalar`
//!    on every other architecture.
//!
//! Requesting `simd` on a non-x86_64 build is allowed and falls back to
//! the scalar implementations kernel by kernel — the tier names a
//! *ceiling*, not a requirement, so sweep scripts can export
//! `DCL_KERNEL_TIER=simd` unconditionally.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation tier the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// The original call-site code, moved verbatim. Semantic anchor.
    Reference,
    /// SoA, allocation-free, autovectorization-friendly. Bit-identical to
    /// reference by replaying its float op sequence.
    Scalar,
    /// Explicit `std::arch` SIMD where the CPU supports it, scalar
    /// fallback elsewhere. Bit-identical by lane-parallel independence.
    Simd,
}

impl KernelTier {
    /// Stable lower-case name (`"reference"`, `"scalar"`, `"simd"`) — the
    /// same spelling `DCL_KERNEL_TIER` accepts and bench/MachineProfile
    /// headers record.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            KernelTier::Reference => "reference",
            KernelTier::Scalar => "scalar",
            KernelTier::Simd => "simd",
        }
    }

    /// All tiers, in escalation order. Drives tier-matrix tests.
    #[must_use]
    pub const fn all() -> [KernelTier; 3] {
        [KernelTier::Reference, KernelTier::Scalar, KernelTier::Simd]
    }

    fn from_u8(v: u8) -> Option<KernelTier> {
        match v {
            1 => Some(KernelTier::Reference),
            2 => Some(KernelTier::Scalar),
            3 => Some(KernelTier::Simd),
            _ => None,
        }
    }

    const fn as_u8(self) -> u8 {
        match self {
            KernelTier::Reference => 1,
            KernelTier::Scalar => 2,
            KernelTier::Simd => 3,
        }
    }
}

/// 0 = undecided; otherwise `KernelTier::as_u8`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The tier the current CPU supports without an override.
#[must_use]
pub fn detected_tier() -> KernelTier {
    if cfg!(target_arch = "x86_64") {
        // SSE2 is architecturally guaranteed on x86_64; AVX2 paths probe
        // `is_x86_feature_detected!` at their own call sites.
        KernelTier::Simd
    } else {
        KernelTier::Scalar
    }
}

fn tier_from_env() -> Option<KernelTier> {
    let raw = std::env::var("DCL_KERNEL_TIER").ok()?;
    match raw.as_str() {
        "reference" => Some(KernelTier::Reference),
        "scalar" => Some(KernelTier::Scalar),
        "simd" => Some(KernelTier::Simd),
        other => panic!("DCL_KERNEL_TIER must be one of reference|scalar|simd, got {other:?}"),
    }
}

/// The tier every kernel dispatches to. Decided once per process (env
/// override, else CPU detection) and cached; [`set_active_tier`] replaces
/// the decision at any time.
#[must_use]
pub fn active_tier() -> KernelTier {
    if let Some(t) = KernelTier::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        return t;
    }
    let decided = tier_from_env().unwrap_or_else(detected_tier);
    // A racing first-use may store a different-but-identically-derived
    // value; last write wins and both are the same decision.
    ACTIVE.store(decided.as_u8(), Ordering::Relaxed);
    decided
}

/// Forces the active tier for the rest of the process (until the next
/// call). Test-matrix entry point: the tier oracle runs each scenario
/// once per tier in a single process through this.
pub fn set_active_tier(tier: KernelTier) {
    ACTIVE.store(tier.as_u8(), Ordering::Relaxed);
}

/// The `target_feature` set the SIMD tier can actually use on this
/// machine, as a stable `+`-joined string (`"none"` off x86_64). Recorded
/// in the `MachineProfile` header of committed `BENCH_*.json` files so
/// baselines state what produced them.
#[must_use]
pub fn simd_features() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            "sse2+avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(KernelTier::Reference.name(), "reference");
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        assert_eq!(KernelTier::Simd.name(), "simd");
    }

    #[test]
    fn set_active_tier_wins_over_detection() {
        for t in KernelTier::all() {
            set_active_tier(t);
            assert_eq!(active_tier(), t);
        }
        set_active_tier(detected_tier());
    }

    #[test]
    fn u8_roundtrip() {
        for t in KernelTier::all() {
            assert_eq!(KernelTier::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(KernelTier::from_u8(0), None);
        assert_eq!(KernelTier::from_u8(9), None);
    }
}

//! Tier selection: one dispatch decision per process, refined per family.
//!
//! The decision order is
//!
//! 1. [`set_active_tier`] — an explicit in-process override (tests force
//!    each tier this way without re-spawning); [`clear_active_tier`]
//!    removes it;
//! 2. the `DCL_KERNEL_TIER` environment variable (`reference`, `scalar`,
//!    `simd` or `incremental`), read once on first use;
//! 3. the **per-family default** ([`default_family_tier`]): the committed
//!    `BENCH_bench.json` baseline shows the best tier differs per kernel
//!    family — the digit DP wants the incremental/SIMD path, `argmin`
//!    wants the unrolled scalar fold, and `bit_len_batch` is fastest as
//!    the plain reference loop (the SoA/SIMD batching overhead exceeds the
//!    work). A global "best" tier therefore regresses some family on every
//!    machine; defaults are per family, while an explicit override (1. or
//!    2.) still forces *all* families for tier-matrix tests.
//!
//! Requesting `simd` (or `incremental`) on a non-x86_64 build is allowed
//! and falls back to the scalar implementations kernel by kernel — a tier
//! names a *ceiling*, not a requirement, so sweep scripts can export
//! `DCL_KERNEL_TIER=incremental` unconditionally.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation tier the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// The original call-site code, moved verbatim. Semantic anchor.
    Reference,
    /// SoA, allocation-free, autovectorization-friendly. Bit-identical to
    /// reference by replaying its float op sequence.
    Scalar,
    /// Explicit `std::arch` SIMD where the CPU supports it, scalar
    /// fallback elsewhere. Bit-identical by lane-parallel independence.
    Simd,
    /// Stateful evaluation: callers that follow the monotone seed schedule
    /// carry a per-edge DP prefix cache (`digit_dp::incremental`), and the
    /// stateless entry points use the best measured stateless tier.
    /// Bit-identical because the cached prefix is a literal memo of the
    /// reference computation's leading digits.
    Incremental,
}

/// The kernel families with independent default tiers. An explicit
/// override ([`set_active_tier`] / `DCL_KERNEL_TIER`) forces every family
/// to the same tier; without one, each family uses its measured best
/// ([`default_family_tier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFamily {
    /// The Lemma 2.6 digit DP and its per-edge aggregation (`digit_dp`).
    DigitDp,
    /// The `argmin_f64` reduction behind every leader decision.
    Argmin,
    /// The `bit_len_batch` wire-accounting kernel.
    Bits,
    /// The `recip_batch` / `ratio_batch` arithmetic kernels.
    Ratio,
}

impl KernelTier {
    /// Stable lower-case name (`"reference"`, `"scalar"`, `"simd"`,
    /// `"incremental"`) — the same spelling `DCL_KERNEL_TIER` accepts and
    /// bench/MachineProfile headers record.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            KernelTier::Reference => "reference",
            KernelTier::Scalar => "scalar",
            KernelTier::Simd => "simd",
            KernelTier::Incremental => "incremental",
        }
    }

    /// All tiers, in escalation order. Drives tier-matrix tests.
    #[must_use]
    pub const fn all() -> [KernelTier; 4] {
        [
            KernelTier::Reference,
            KernelTier::Scalar,
            KernelTier::Simd,
            KernelTier::Incremental,
        ]
    }

    fn from_u8(v: u8) -> Option<KernelTier> {
        match v {
            1 => Some(KernelTier::Reference),
            2 => Some(KernelTier::Scalar),
            3 => Some(KernelTier::Simd),
            4 => Some(KernelTier::Incremental),
            _ => None,
        }
    }

    const fn as_u8(self) -> u8 {
        match self {
            KernelTier::Reference => 1,
            KernelTier::Scalar => 2,
            KernelTier::Simd => 3,
            KernelTier::Incremental => 4,
        }
    }
}

/// 0 = no override; otherwise `KernelTier::as_u8` of the forced tier.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// 0 = env not read yet; `NO_ENV` = read, unset; otherwise the tier.
static ENV: AtomicU8 = AtomicU8::new(0);
const NO_ENV: u8 = u8::MAX;

/// The tier the current CPU supports without an override.
#[must_use]
pub fn detected_tier() -> KernelTier {
    if cfg!(target_arch = "x86_64") {
        // SSE2 is architecturally guaranteed on x86_64; AVX2 paths probe
        // `is_x86_feature_detected!` at their own call sites.
        KernelTier::Simd
    } else {
        KernelTier::Scalar
    }
}

fn tier_from_env() -> Option<KernelTier> {
    match ENV.load(Ordering::Relaxed) {
        0 => {}
        NO_ENV => return None,
        v => return KernelTier::from_u8(v),
    }
    let decided = std::env::var("DCL_KERNEL_TIER").ok().map(|raw| {
        match raw.as_str() {
        "reference" => KernelTier::Reference,
        "scalar" => KernelTier::Scalar,
        "simd" => KernelTier::Simd,
        "incremental" => KernelTier::Incremental,
        other => {
            panic!("DCL_KERNEL_TIER must be one of reference|scalar|simd|incremental, got {other:?}")
        }
    }
    });
    // A racing first-use stores an identically-derived value.
    ENV.store(decided.map_or(NO_ENV, KernelTier::as_u8), Ordering::Relaxed);
    decided
}

/// The explicit override in effect, if any: [`set_active_tier`] wins over
/// `DCL_KERNEL_TIER`; `None` means per-family defaults apply.
#[must_use]
pub fn tier_override() -> Option<KernelTier> {
    KernelTier::from_u8(ACTIVE.load(Ordering::Relaxed)).or_else(tier_from_env)
}

/// The measured-best default tier of `family` when no override is in
/// effect, from the committed `BENCH_bench.json` baseline (the
/// `kernels/*/{tier}` rows). `family_dispatch.rs` pins these choices
/// against the committed numbers.
#[must_use]
pub fn default_family_tier(family: KernelFamily) -> KernelTier {
    match family {
        // edge_shares: incremental ≻ simd ≻ scalar ≻ reference.
        KernelFamily::DigitDp => KernelTier::Incremental,
        // argmin/4096: scalar (unrolled four-lane fold) edges out AVX2.
        KernelFamily::Argmin => KernelTier::Scalar,
        // bit_len_batch/4096: the reference `leading_zeros` loop wins;
        // batching overhead exceeds the one-instruction work item.
        KernelFamily::Bits => KernelTier::Reference,
        // No committed measurement separates the tiers; keep detection.
        KernelFamily::Ratio => detected_tier(),
    }
}

/// The tier `family` dispatches to right now: the explicit override if one
/// is in effect, else the family's measured default.
#[must_use]
pub fn family_tier(family: KernelFamily) -> KernelTier {
    tier_override().unwrap_or_else(|| default_family_tier(family))
}

/// The single tier every family dispatches to under an override, else the
/// CPU-detected ceiling. Kept for call sites that need *one* tier name
/// (legacy dispatch, log lines); family-aware code uses [`family_tier`].
#[must_use]
pub fn active_tier() -> KernelTier {
    tier_override().unwrap_or_else(detected_tier)
}

/// The dispatch decision as a stable label for bench/profile headers:
/// the forced tier's name under an override, `"per-family"` otherwise.
#[must_use]
pub fn dispatch_label() -> &'static str {
    match tier_override() {
        Some(t) => t.name(),
        None => "per-family",
    }
}

/// Forces every family to `tier` for the rest of the process (until the
/// next call or [`clear_active_tier`]). Test-matrix entry point: the tier
/// oracle runs each scenario once per tier in a single process through
/// this.
pub fn set_active_tier(tier: KernelTier) {
    ACTIVE.store(tier.as_u8(), Ordering::Relaxed);
}

/// Removes the in-process override, restoring `DCL_KERNEL_TIER` (if set)
/// or the per-family defaults.
pub fn clear_active_tier() {
    ACTIVE.store(0, Ordering::Relaxed);
}

/// The `target_feature` set the SIMD tier can actually use on this
/// machine, as a stable `+`-joined string (`"none"` off x86_64). Recorded
/// in the `MachineProfile` header of committed `BENCH_*.json` files so
/// baselines state what produced them.
#[must_use]
pub fn simd_features() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            "sse2+avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(KernelTier::Reference.name(), "reference");
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        assert_eq!(KernelTier::Simd.name(), "simd");
        assert_eq!(KernelTier::Incremental.name(), "incremental");
    }

    #[test]
    fn set_active_tier_wins_over_detection() {
        for t in KernelTier::all() {
            set_active_tier(t);
            assert_eq!(active_tier(), t);
            // An override forces every family.
            for f in [
                KernelFamily::DigitDp,
                KernelFamily::Argmin,
                KernelFamily::Bits,
                KernelFamily::Ratio,
            ] {
                assert_eq!(family_tier(f), t);
            }
        }
        clear_active_tier();
    }

    #[test]
    fn u8_roundtrip() {
        for t in KernelTier::all() {
            assert_eq!(KernelTier::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(KernelTier::from_u8(0), None);
        assert_eq!(KernelTier::from_u8(9), None);
    }

    #[test]
    fn family_defaults_are_per_family() {
        assert_eq!(
            default_family_tier(KernelFamily::DigitDp),
            KernelTier::Incremental
        );
        assert_eq!(
            default_family_tier(KernelFamily::Argmin),
            KernelTier::Scalar
        );
        assert_eq!(
            default_family_tier(KernelFamily::Bits),
            KernelTier::Reference
        );
        assert_eq!(default_family_tier(KernelFamily::Ratio), detected_tier());
    }
}

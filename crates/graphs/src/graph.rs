//! Simple undirected graph stored in compressed sparse row (CSR) form.

use std::fmt;

/// Index of a node in a [`Graph`]. Nodes are `0..n`.
pub type NodeId = usize;

/// Error produced when constructing an invalid [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop(NodeId),
    /// The same undirected edge was inserted twice.
    DuplicateEdge(NodeId, NodeId),
    /// A [`Graph::from_sorted_edges`] input violated the sorted-orientation
    /// contract (an edge with `u > v`, or a pair out of lexicographic order).
    UnsortedEdges {
        /// The edge at which the contract was first violated.
        edge: (NodeId, NodeId),
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "edge endpoint {node} out of range for graph with {n} nodes"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::UnsortedEdges { edge: (u, v) } => {
                write!(
                    f,
                    "edge ({u}, {v}) violates the sorted-orientation contract (u < v, strictly increasing)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph in CSR form.
///
/// Invariants (enforced at construction): no self loops, no parallel edges,
/// adjacency lists sorted increasingly. Node identifiers double as the unique
/// `O(log n)`-bit IDs assumed by the distributed models.
///
/// # Examples
///
/// ```
/// use dcl_graphs::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.m(), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists, length `2m`.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Edges may be given in either orientation; `(u, v)` and `(v, u)` denote
    /// the same edge and may not both appear.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range, an edge is a
    /// self loop, or an edge appears twice.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Builds a graph directly in CSR form from an edge list that is already
    /// strictly sorted lexicographically with `u < v` per edge — `O(n + m)`
    /// with no sorting pass, the construction path used by the scale-tier
    /// generators (`gnp`, `power_law`, `expander` at 10⁴–10⁶ nodes).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateEdge`] if the same edge appears twice,
    /// [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] on invalid
    /// endpoints, and [`GraphError::UnsortedEdges`] if the list violates the
    /// `u < v`, strictly-increasing contract. Callers with an unsorted edge
    /// list should use [`Graph::from_edges`]; generators that construct a
    /// valid stream by design use the panicking fast path
    /// [`Graph::from_sorted_edges_unchecked`].
    pub fn from_sorted_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut deg = vec![0usize; n];
        let mut prev: Option<(NodeId, NodeId)> = None;
        for &(u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if u > v {
                return Err(GraphError::UnsortedEdges { edge: (u, v) });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if let Some(p) = prev {
                if p == (u, v) {
                    return Err(GraphError::DuplicateEdge(u, v));
                }
                if p > (u, v) {
                    return Err(GraphError::UnsortedEdges { edge: (u, v) });
                }
            }
            prev = Some((u, v));
            deg[u] += 1;
            deg[v] += 1;
        }
        Ok(Graph::csr_from_sorted(n, edges, deg))
    }

    /// [`Graph::from_sorted_edges`] for callers whose edge stream is valid by
    /// construction (the hot generators): same validation, but contract
    /// violations panic instead of allocating a [`GraphError`], so the happy
    /// path stays a single `O(n + m)` pass with no `Result` plumbing.
    ///
    /// # Panics
    ///
    /// Panics on any input [`Graph::from_sorted_edges`] would reject
    /// (duplicate edges, `u >= v`, out-of-range endpoints, out-of-order
    /// pairs).
    pub fn from_sorted_edges_unchecked(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        Graph::from_sorted_edges(n, edges)
            .unwrap_or_else(|e| panic!("invalid sorted edge list: {e}"))
    }

    /// Shared CSR assembly for a validated strictly-sorted edge list with
    /// per-node degrees already counted.
    fn csr_from_sorted(n: usize, edges: &[(NodeId, NodeId)], deg: Vec<usize>) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut adj = vec![0usize; 2 * edges.len()];
        let mut cursor = offsets.clone();
        // Smaller-side neighbors first (for node x these are the `u` of edges
        // `(u, x)`, which arrive in increasing `u`), then larger-side
        // neighbors (the `v` of edges `(x, v)`, increasing per `x`): each
        // adjacency list comes out sorted without a sort pass.
        for &(u, v) in edges {
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        for &(u, v) in edges {
            adj[cursor[u]] = v;
            cursor[u] += 1;
        }
        Graph { offsets, adj }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sorted slice of the neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over all node indices.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// The subgraph induced by `keep` (nodes with `keep[v] == true`),
    /// together with the mapping from new node ids to original ids.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != n`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.n(), "keep mask length must equal n");
        let mut orig_of_new = Vec::new();
        let mut new_of_orig = vec![usize::MAX; self.n()];
        for v in self.nodes() {
            if keep[v] {
                new_of_orig[v] = orig_of_new.len();
                orig_of_new.push(v);
            }
        }
        let mut builder = GraphBuilder::new(orig_of_new.len());
        for (u, v) in self.edges() {
            if keep[u] && keep[v] {
                builder
                    .add_edge(new_of_orig[u], new_of_orig[v])
                    .expect("induced subgraph edges are valid");
            }
        }
        (builder.build(), orig_of_new)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use dcl_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), dcl_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self loops, or
    /// duplicate edges (duplicates are detected at [`GraphBuilder::build`]
    /// time for efficiency, except exact consecutive repeats).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Whether the edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    ///
    /// Panics if the same edge was inserted twice (programming error: callers
    /// that cannot rule out duplicates should check with
    /// [`GraphBuilder::has_edge`], use [`GraphBuilder::try_build`] to get the
    /// typed [`GraphError::DuplicateEdge`], or use [`Graph::from_edges`],
    /// which deduplicates by erroring).
    pub fn build(self) -> Graph {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finalizes the graph, reporting a duplicate insertion as a typed error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateEdge`] if the same undirected edge was
    /// inserted twice.
    pub fn try_build(mut self) -> Result<Graph, GraphError> {
        self.edges.sort_unstable();
        if let Some(w) = self.edges.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateEdge(w[0].0, w[0].1));
        }
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = vec![0usize; self.n + 1];
        for v in 0..self.n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut adj = vec![0usize; 2 * self.edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            adj[cursor[u]] = v;
            cursor[u] += 1;
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Edges were inserted in sorted order per endpoint u; entries for v
        // (the larger endpoint) may be out of order, so sort each list.
        for v in 0..self.n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(Graph { offsets, adj })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let g = Graph::from_edges(5, &[(3, 1), (0, 3), (4, 0)]).unwrap();
        assert_eq!(g.neighbors(3), &[0, 1]);
        assert_eq!(g.neighbors(0), &[3, 4]);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn from_sorted_edges_matches_from_edges() {
        let edges = [(0, 3), (0, 4), (1, 3), (2, 4), (3, 4)];
        let fast = Graph::from_sorted_edges(5, &edges).unwrap();
        let slow = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast, Graph::from_sorted_edges_unchecked(5, &edges));
        for v in 0..5 {
            assert!(fast.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn from_sorted_edges_rejects_duplicates_with_typed_error() {
        assert_eq!(
            Graph::from_sorted_edges(3, &[(0, 1), (0, 1)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn from_sorted_edges_rejects_contract_violations_with_typed_errors() {
        assert_eq!(
            Graph::from_sorted_edges(3, &[(1, 0)]),
            Err(GraphError::UnsortedEdges { edge: (1, 0) })
        );
        assert_eq!(
            Graph::from_sorted_edges(3, &[(0, 2), (0, 1)]),
            Err(GraphError::UnsortedEdges { edge: (0, 1) })
        );
        assert_eq!(
            Graph::from_sorted_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            Graph::from_sorted_edges(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn from_sorted_edges_unchecked_panics_on_duplicates() {
        let _ = Graph::from_sorted_edges_unchecked(3, &[(0, 1), (0, 1)]);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn builder_panics_on_duplicate_edge_at_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        let _ = b.build();
    }

    #[test]
    fn try_build_reports_duplicates_as_typed_errors() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        assert_eq!(b.try_build(), Err(GraphError::DuplicateEdge(0, 1)));
        let mut ok = GraphBuilder::new(3);
        ok.add_edge(0, 1).unwrap();
        assert_eq!(ok.try_build().unwrap().m(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = Graph::from_edges(3, &[(0, 2)]).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let keep = vec![true, true, false, true, true];
        let (h, orig) = g.induced_subgraph(&keep);
        assert_eq!(h.n(), 4);
        assert_eq!(orig, vec![0, 1, 3, 4]);
        // Surviving edges: {0,1}, {3,4}, {0,4}.
        assert_eq!(h.m(), 3);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(2, 3)); // orig {3,4}
        assert!(h.has_edge(0, 3)); // orig {0,4}
    }

    #[test]
    fn degree_counts() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.max_degree(), 3);
    }
}

//! Graph generators.
//!
//! Deterministic families (rings, paths, grids, hypercubes, …) take only size
//! parameters. Random families take an explicit `u64` seed so that every
//! experiment in the workspace is reproducible.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Cycle on `n ≥ 3` nodes (diameter ⌊n/2⌋, Δ = 2).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring requires n >= 3");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).expect("ring edges are valid");
    }
    b.build()
}

/// Path on `n ≥ 1` nodes (diameter n − 1).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path edges are valid");
    }
    b.build()
}

/// Star: node 0 connected to all others (Δ = n − 1, diameter 2).
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("star edges are valid");
    }
    b.build()
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete graph edges are valid");
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("bipartite edges are valid");
        }
    }
    builder.build()
}

/// `rows × cols` grid (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1))
                    .expect("grid edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c))
                    .expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube on `2^d` nodes (Δ = d, diameter d).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if v < u {
                b.add_edge(v, u).expect("hypercube edges are valid");
            }
        }
    }
    b.build()
}

/// Complete binary tree on `n` nodes (heap layout: children of `v` are
/// `2v + 1`, `2v + 2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2).expect("tree edges are valid");
    }
    b.build()
}

/// Caterpillar: a path of `spine` nodes, each with `legs` pendant nodes.
///
/// Useful for large-diameter, moderate-degree instances.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(s - 1, s)
            .expect("caterpillar spine edges are valid");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l)
                .expect("caterpillar leg edges are valid");
        }
    }
    b.build()
}

/// Erdős–Rényi graph `G(n, p)` with a seeded RNG.
///
/// Samples edges by geometric skips over the linearized strict upper
/// triangle (`O(n + m)` expected work) instead of flipping all `n(n−1)/2`
/// coins, so sparse instances at `n = 10⁶` are feasible. Edges are emitted
/// in sorted order and the CSR form is built directly.
///
/// Determinism: the edge set is a pure function of `(n, p, seed)`. Note that
/// the skip-sampling draw sequence differs from the historical per-pair
/// sampler, so a given seed produces a *different* (equally distributed)
/// edge set than releases that used the O(n²) loop.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let total = pair_count(n);
    if p <= 0.0 || total == 0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let log_q = (1.0 - p).ln(); // < 0 since 0 < p < 1
    let mut t: u64 = 0; // next candidate pair index
    loop {
        // Geometric gap: number of skipped pairs before the next edge.
        let u: f64 = rng.gen();
        let gap = ((1.0 - u).ln() / log_q).floor();
        if !gap.is_finite() || t as f64 + gap >= total as f64 {
            break;
        }
        t += gap as u64;
        if t >= total {
            break;
        }
        edges.push(unrank_pair(n, t));
        t += 1;
        if t >= total {
            break;
        }
    }
    Graph::from_sorted_edges_unchecked(n, &edges)
}

/// Number of unordered pairs `{u, v}` with `u < v < n`.
fn pair_count(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

/// Maps a pair index `t ∈ [0, n(n−1)/2)` in the lexicographic enumeration of
/// the strict upper triangle to its pair `(u, v)`.
fn unrank_pair(n: usize, t: u64) -> (NodeId, NodeId) {
    let nf = n as f64;
    // Row u starts at offset S(u) = u·n − u(u+1)/2; invert approximately,
    // then correct locally (float error is at most a couple of rows).
    let tf = t as f64;
    let mut u = (nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * tf).max(0.0).sqrt()).floor();
    if u < 0.0 {
        u = 0.0;
    }
    let mut u = (u as u64).min(n as u64 - 2);
    let row_start = |u: u64| u * n as u64 - u * (u + 1) / 2;
    while u > 0 && row_start(u) > t {
        u -= 1;
    }
    while u + 2 < n as u64 && row_start(u + 1) <= t {
        u += 1;
    }
    let v = u + 1 + (t - row_start(u));
    debug_assert!(v < n as u64);
    (u as NodeId, v as NodeId)
}

/// Per-run statistics of [`random_regular_detailed`], making the
/// configuration model's degree contract explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegularStats {
    /// The requested degree `d`.
    pub target_degree: usize,
    /// Stubs requested but not realized as edge endpoints:
    /// `n·d − 2·m`. Equals the total degree deficit summed over all nodes —
    /// `0` when a clean configuration-model attempt succeeded, ≥ 1 whenever
    /// `n·d` is odd (the unpaired last stub is dropped), and possibly larger
    /// when the greedy fallback had to skip conflicting stubs.
    pub dropped_stubs: usize,
    /// Whether the greedy fallback ran (a clean attempt never drops stubs
    /// beyond the odd-parity one).
    pub used_fallback: bool,
}

/// Random `d`-regular-ish graph via the configuration model with rejection of
/// self loops and parallel edges (the result has maximum degree ≤ `d`; most
/// nodes attain degree exactly `d`).
///
/// # Degree contract
///
/// The generator is *best effort*, not exactly `d`-regular:
///
/// - when `n·d` is odd, the last stub cannot be paired and is silently
///   dropped, so exactly one node ends with degree `d − 1` on a clean
///   attempt;
/// - after 20 rejected shuffles, a greedy fallback pairs stubs while
///   skipping self loops and repeated edges, which can leave further
///   (deterministically seeded) degree deficits.
///
/// Use [`random_regular_detailed`] to observe the realized deficit; see
/// [`RegularStats`].
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    random_regular_detailed(n, d, seed).0
}

/// [`random_regular`] plus [`RegularStats`] describing how far the result is
/// from exactly `d`-regular. Identical seeded output to [`random_regular`].
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn random_regular_detailed(n: usize, d: usize, seed: u64) -> (Graph, RegularStats) {
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    let stats = |g: &Graph, used_fallback: bool| {
        let stats = RegularStats {
            target_degree: d,
            dropped_stubs: n * d - 2 * g.m(),
            used_fallback,
        };
        debug_assert!(g.max_degree() <= d, "configuration model exceeded d");
        debug_assert!(
            used_fallback || stats.dropped_stubs == (n * d) % 2,
            "clean attempts drop only the odd-parity stub"
        );
        stats
    };
    // A few restarts are enough in practice; fall back to dropping the
    // conflicting pairs so the generator always terminates.
    for _attempt in 0..20 {
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::new(n);
        // dcl-lint: allow(no-hash-iter) — insert/contains dedup only, never iterated
        let mut seen = std::collections::HashSet::new();
        let mut ok = true;
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                ok = false;
                break;
            }
            b.add_edge(u, v).expect("validated above");
        }
        if ok {
            let g = b.build();
            let s = stats(&g, false);
            return (g, s);
        }
    }
    // Fallback: greedy matching of stubs skipping conflicts.
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    // dcl-lint: allow(no-hash-iter) — insert/contains dedup only, never iterated
    let mut seen = std::collections::HashSet::new();
    let mut pending: Option<NodeId> = None;
    for &s in &stubs {
        match pending {
            None => pending = Some(s),
            Some(u) => {
                if u != s && seen.insert((u.min(s), u.max(s))) {
                    b.add_edge(u, s).expect("validated above");
                    pending = None;
                } else {
                    pending = Some(s); // drop u's stub
                }
            }
        }
    }
    let g = b.build();
    let s = stats(&g, true);
    (g, s)
}

/// Random spanning tree on `n` nodes (uniform attachment), then `extra`
/// random chords. Connected by construction.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(v, parent).expect("attachment edges are valid");
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < 50 * extra + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).expect("checked above");
            added += 1;
        }
    }
    b.build()
}

/// "Cluster chain": `k` dense clusters of `size` nodes (each a `G(size, p)`
/// plus a spanning path to stay connected) linked in a chain by single
/// edges. Produces large-diameter graphs with locally high degree — the
/// motivating regime for network decomposition (Corollary 1.2).
pub fn cluster_chain(k: usize, size: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = k * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = c * size;
        for i in 1..size {
            b.add_edge(base + i - 1, base + i)
                .expect("cluster path edges are valid");
        }
        for i in 0..size {
            for j in (i + 2)..size {
                if rng.gen::<f64>() < p {
                    b.add_edge(base + i, base + j)
                        .expect("cluster chord edges are valid");
                }
            }
        }
        if c > 0 {
            b.add_edge(base - 1, base)
                .expect("chain link edges are valid");
        }
    }
    b.build()
}

/// Chung–Lu style power-law graph: node `v` has weight `(v+1)^{-1/(γ−1)}`,
/// normalized to a target average degree; the edge `{u, v}` appears
/// independently with probability `min(1, C·w_u·w_v)`.
///
/// Sampling uses the Miller–Hagberg skip algorithm: because the weights are
/// non-increasing in the node id, for a fixed `u` the current probability is
/// an upper envelope for all later `v`, so candidate neighbors are found by
/// geometric skips under the envelope and accepted with ratio `p/q` —
/// `O(n + m)` expected work instead of the former O(n²) pair loop. The edge
/// stream is sorted, so the CSR form is built directly.
///
/// Determinism: the edge set is a pure function of the parameters; as with
/// [`gnp`], the draw sequence differs from the historical per-pair sampler,
/// so a given seed yields a different (equally distributed) edge set.
pub fn power_law(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must be greater than 1");
    if n < 2 || avg_degree <= 0.0 {
        return Graph::empty(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n)
        .map(|v| ((v + 1) as f64).powf(-1.0 / (gamma - 1.0)))
        .collect();
    let wsum: f64 = weights.iter().sum();
    // min(1, C·w_u·w_v) with C chosen so the expected degree sum targets
    // `avg_degree · n` (same normalization as the historical sampler).
    let c = avg_degree * n as f64 / (wsum * wsum);
    let mut edges = Vec::new();
    for u in 0..n.saturating_sub(1) {
        let mut v = u + 1;
        let mut q = (c * weights[u] * weights[v]).min(1.0);
        while v < n && q > 0.0 {
            if q < 1.0 {
                // Geometric skip under the envelope probability q.
                let r: f64 = rng.gen();
                let gap = ((1.0 - r).ln() / (1.0 - q).ln()).floor();
                if !gap.is_finite() || v as f64 + gap >= n as f64 {
                    break;
                }
                v += gap as usize;
            }
            let p = (c * weights[u] * weights[v]).min(1.0);
            debug_assert!(p <= q, "weights must be non-increasing");
            if rng.gen::<f64>() < p / q {
                edges.push((u, v));
            }
            q = p;
            v += 1;
        }
    }
    Graph::from_sorted_edges_unchecked(n, &edges)
}

/// Bounded-degree expander-style graph: the union of `d` seeded random
/// perfect matchings on `n` nodes (for odd `n` each matching leaves one node
/// unmatched). Collisions between matchings are dropped, so the maximum
/// degree is ≤ `d` and, for `n ≫ d`, almost all nodes have degree exactly
/// `d`. Unions of independent random matchings are expanders with high
/// probability for `d ≥ 3` — the bounded-degree, low-diameter regime used by
/// the scale benchmarks.
pub fn expander(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n / 2 * d);
    let mut perm: Vec<NodeId> = (0..n).collect();
    for _ in 0..d {
        perm.shuffle(&mut rng);
        for pair in perm.chunks_exact(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            edges.push((a, b));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_sorted_edges_unchecked(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn ring_properties() {
        let g = ring(10);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(metrics::diameter(&g), Some(5));
    }

    #[test]
    fn path_diameter() {
        let g = path(7);
        assert_eq!(metrics::diameter(&g), Some(6));
    }

    #[test]
    fn star_max_degree() {
        let g = star(9);
        assert_eq!(g.max_degree(), 8);
        assert_eq!(metrics::diameter(&g), Some(2));
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(metrics::diameter(&g), Some(1));
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(metrics::diameter(&g), Some(5));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(metrics::diameter(&g), Some(4));
    }

    #[test]
    fn binary_tree_is_acyclic_connected() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 + 15);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn gnp_is_reproducible() {
        let a = gnp(50, 0.1, 7);
        let b = gnp(50, 0.1, 7);
        assert_eq!(a, b);
        let c = gnp(50, 0.1, 8);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 1).m(), 0);
        assert_eq!(gnp(20, 1.0, 1).m(), 190);
    }

    #[test]
    fn unrank_pair_enumerates_the_upper_triangle() {
        for n in [2usize, 3, 5, 11] {
            let mut expect = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    expect.push((u, v));
                }
            }
            let got: Vec<_> = (0..pair_count(n)).map(|t| unrank_pair(n, t)).collect();
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn gnp_edge_count_tracks_expectation() {
        let n = 2000;
        let p = 0.002;
        let g = gnp(n, p, 99);
        let expect = pair_count(n) as f64 * p;
        let m = g.m() as f64;
        assert!(
            (m - expect).abs() < 4.0 * expect.sqrt() + 10.0,
            "m = {m}, expected ≈ {expect}"
        );
    }

    #[test]
    fn power_law_average_degree_tracks_target() {
        let n = 3000;
        let g = power_law(n, 2.5, 6.0, 17);
        let avg = 2.0 * g.m() as f64 / n as f64;
        // min(1, ·) clipping loses a little mass on the head nodes, so the
        // realized average sits slightly below the target.
        assert!(
            avg > 3.5 && avg < 7.0,
            "average degree {avg} far from target 6"
        );
        // The head of the id range should be much hotter than the tail.
        let head_max = (0..10).map(|v| g.degree(v)).max().unwrap();
        assert!(head_max > 20, "head degree {head_max} not skewed");
    }

    #[test]
    fn expander_is_near_regular_and_connected() {
        let g = expander(2000, 4, 5);
        assert!(g.max_degree() <= 4);
        let exact = g.nodes().filter(|&v| g.degree(v) == 4).count();
        assert!(exact >= 1900, "only {exact} nodes reached degree 4");
        assert!(metrics::is_connected(&g));
        assert_eq!(g, expander(2000, 4, 5));
    }

    #[test]
    fn expander_odd_n_leaves_unmatched_nodes() {
        let g = expander(9, 2, 3);
        assert!(g.max_degree() <= 2);
        assert!(g.m() <= 8); // 2 matchings × 4 pairs
    }

    #[test]
    fn random_regular_detailed_reports_odd_parity_drop() {
        // n·d = 15 is odd: exactly one stub cannot pair on a clean attempt.
        let (g, stats) = random_regular_detailed(5, 3, 11);
        assert_eq!(stats.target_degree, 3);
        assert_eq!(stats.dropped_stubs, 5 * 3 - 2 * g.m());
        assert!(stats.dropped_stubs >= 1, "odd n·d must drop a stub");
        assert_eq!(stats.dropped_stubs % 2, 1);
        // Even n·d with a comfortable spread: clean attempt, no deficit.
        let (g2, stats2) = random_regular_detailed(40, 4, 2);
        if !stats2.used_fallback {
            assert_eq!(stats2.dropped_stubs, 0);
            assert_eq!(2 * g2.m(), 160);
        }
    }

    #[test]
    fn random_regular_detailed_matches_plain_variant() {
        let (g, _) = random_regular_detailed(30, 4, 8);
        assert_eq!(g, random_regular(30, 4, 8));
    }

    #[test]
    fn random_regular_degree_bound() {
        let g = random_regular(40, 5, 3);
        assert!(g.max_degree() <= 5);
        let exact = g.nodes().filter(|&v| g.degree(v) == 5).count();
        assert!(
            exact >= 30,
            "most nodes should reach the target degree, got {exact}"
        );
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(30, 10, seed);
            assert!(metrics::is_connected(&g));
            assert_eq!(g.m(), 29 + 10);
        }
    }

    #[test]
    fn cluster_chain_connected_and_large_diameter() {
        let g = cluster_chain(8, 10, 0.5, 11);
        assert!(metrics::is_connected(&g));
        assert!(metrics::diameter(&g).unwrap() >= 8);
    }

    #[test]
    fn power_law_reproducible_nonempty() {
        let g = power_law(60, 2.5, 4.0, 5);
        assert!(g.m() > 0);
        assert_eq!(g, power_law(60, 2.5, 4.0, 5));
    }
}

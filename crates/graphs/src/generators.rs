//! Graph generators.
//!
//! Deterministic families (rings, paths, grids, hypercubes, …) take only size
//! parameters. Random families take an explicit `u64` seed so that every
//! experiment in the workspace is reproducible.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Cycle on `n ≥ 3` nodes (diameter ⌊n/2⌋, Δ = 2).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring requires n >= 3");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).expect("ring edges are valid");
    }
    b.build()
}

/// Path on `n ≥ 1` nodes (diameter n − 1).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path edges are valid");
    }
    b.build()
}

/// Star: node 0 connected to all others (Δ = n − 1, diameter 2).
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("star edges are valid");
    }
    b.build()
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete graph edges are valid");
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("bipartite edges are valid");
        }
    }
    builder.build()
}

/// `rows × cols` grid (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1))
                    .expect("grid edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c))
                    .expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube on `2^d` nodes (Δ = d, diameter d).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if v < u {
                b.add_edge(v, u).expect("hypercube edges are valid");
            }
        }
    }
    b.build()
}

/// Complete binary tree on `n` nodes (heap layout: children of `v` are
/// `2v + 1`, `2v + 2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2).expect("tree edges are valid");
    }
    b.build()
}

/// Caterpillar: a path of `spine` nodes, each with `legs` pendant nodes.
///
/// Useful for large-diameter, moderate-degree instances.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(s - 1, s)
            .expect("caterpillar spine edges are valid");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l)
                .expect("caterpillar leg edges are valid");
        }
    }
    b.build()
}

/// Erdős–Rényi graph `G(n, p)` with a seeded RNG.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v).expect("gnp edges are valid");
            }
        }
    }
    b.build()
}

/// Random `d`-regular-ish graph via the configuration model with rejection of
/// self loops and parallel edges (the result has maximum degree ≤ `d`; most
/// nodes attain degree exactly `d`).
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    // A few restarts are enough in practice; fall back to dropping the
    // conflicting pairs so the generator always terminates.
    for _attempt in 0..20 {
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::new(n);
        let mut seen = std::collections::HashSet::new();
        let mut ok = true;
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                ok = false;
                break;
            }
            b.add_edge(u, v).expect("validated above");
        }
        if ok {
            return b.build();
        }
    }
    // Fallback: greedy matching of stubs skipping conflicts.
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::new();
    let mut pending: Option<NodeId> = None;
    for &s in &stubs {
        match pending {
            None => pending = Some(s),
            Some(u) => {
                if u != s && seen.insert((u.min(s), u.max(s))) {
                    b.add_edge(u, s).expect("validated above");
                    pending = None;
                } else {
                    pending = Some(s); // drop u's stub
                }
            }
        }
    }
    b.build()
}

/// Random spanning tree on `n` nodes (uniform attachment), then `extra`
/// random chords. Connected by construction.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(v, parent).expect("attachment edges are valid");
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < 50 * extra + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).expect("checked above");
            added += 1;
        }
    }
    b.build()
}

/// "Cluster chain": `k` dense clusters of `size` nodes (each a `G(size, p)`
/// plus a spanning path to stay connected) linked in a chain by single
/// edges. Produces large-diameter graphs with locally high degree — the
/// motivating regime for network decomposition (Corollary 1.2).
pub fn cluster_chain(k: usize, size: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = k * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = c * size;
        for i in 1..size {
            b.add_edge(base + i - 1, base + i)
                .expect("cluster path edges are valid");
        }
        for i in 0..size {
            for j in (i + 2)..size {
                if rng.gen::<f64>() < p {
                    b.add_edge(base + i, base + j)
                        .expect("cluster chord edges are valid");
                }
            }
        }
        if c > 0 {
            b.add_edge(base - 1, base)
                .expect("chain link edges are valid");
        }
    }
    b.build()
}

/// Chung–Lu style power-law graph: node `v` has weight `(v+1)^{-γ}`-ish,
/// normalized to a target average degree.
pub fn power_law(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n)
        .map(|v| ((v + 1) as f64).powf(-1.0 / (gamma - 1.0)))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let scale = avg_degree * n as f64 / wsum;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (scale * weights[u] * weights[v] / wsum).min(1.0);
            if rng.gen::<f64>() < p {
                b.add_edge(u, v).expect("power-law edges are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn ring_properties() {
        let g = ring(10);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(metrics::diameter(&g), Some(5));
    }

    #[test]
    fn path_diameter() {
        let g = path(7);
        assert_eq!(metrics::diameter(&g), Some(6));
    }

    #[test]
    fn star_max_degree() {
        let g = star(9);
        assert_eq!(g.max_degree(), 8);
        assert_eq!(metrics::diameter(&g), Some(2));
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(metrics::diameter(&g), Some(1));
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(metrics::diameter(&g), Some(5));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(metrics::diameter(&g), Some(4));
    }

    #[test]
    fn binary_tree_is_acyclic_connected() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 + 15);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn gnp_is_reproducible() {
        let a = gnp(50, 0.1, 7);
        let b = gnp(50, 0.1, 7);
        assert_eq!(a, b);
        let c = gnp(50, 0.1, 8);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 1).m(), 0);
        assert_eq!(gnp(20, 1.0, 1).m(), 190);
    }

    #[test]
    fn random_regular_degree_bound() {
        let g = random_regular(40, 5, 3);
        assert!(g.max_degree() <= 5);
        let exact = g.nodes().filter(|&v| g.degree(v) == 5).count();
        assert!(
            exact >= 30,
            "most nodes should reach the target degree, got {exact}"
        );
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(30, 10, seed);
            assert!(metrics::is_connected(&g));
            assert_eq!(g.m(), 29 + 10);
        }
    }

    #[test]
    fn cluster_chain_connected_and_large_diameter() {
        let g = cluster_chain(8, 10, 0.5, 11);
        assert!(metrics::is_connected(&g));
        assert!(metrics::diameter(&g).unwrap() >= 8);
    }

    #[test]
    fn power_law_reproducible_nonempty() {
        let g = power_law(60, 2.5, 4.0, 5);
        assert!(g.m() > 0);
        assert_eq!(g, power_law(60, 2.5, 4.0, 5));
    }
}

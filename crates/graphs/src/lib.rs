//! Graph representation, generators and metrics for the distributed-coloring
//! workspace.
//!
//! All simulators and algorithms in this workspace (CONGEST, CONGESTED
//! CLIQUE, MPC) operate on the simple undirected [`Graph`] type defined here.
//! The crate also provides deterministic and seeded-random graph
//! [`generators`], exact distance/diameter [`metrics`] and proper-coloring
//! [`validation`] helpers used throughout the test and benchmark suites.
//!
//! # Examples
//!
//! ```
//! use dcl_graphs::{Graph, generators, metrics};
//!
//! let g = generators::ring(8);
//! assert_eq!(g.n(), 8);
//! assert_eq!(g.max_degree(), 2);
//! assert_eq!(metrics::diameter(&g), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod metrics;
pub mod validation;

pub use graph::{Graph, GraphBuilder, GraphError, NodeId};

//! Validators for (list) colorings, independent sets and related invariants.
//!
//! Every algorithm in the workspace is checked against these reference
//! validators in tests, integration tests and the experiment harness.

use crate::graph::{Graph, NodeId};

/// A violation found by a validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two adjacent nodes share a color.
    MonochromaticEdge(NodeId, NodeId),
    /// A node is colored with a color outside its list.
    ColorNotInList(NodeId),
    /// A node has no color assigned.
    Uncolored(NodeId),
    /// Two adjacent nodes are both in the independent set.
    AdjacentInSet(NodeId, NodeId),
    /// A node outside the set has no neighbor in the set (non-maximality).
    NotMaximal(NodeId),
}

/// Checks that `colors` is a proper coloring of `g` (adjacent nodes differ).
///
/// Returns the first violation found, or `None` if proper.
pub fn check_proper(g: &Graph, colors: &[u64]) -> Option<Violation> {
    assert_eq!(colors.len(), g.n(), "color vector length must equal n");
    for (u, v) in g.edges() {
        if colors[u] == colors[v] {
            return Some(Violation::MonochromaticEdge(u, v));
        }
    }
    None
}

/// Checks a *partial* coloring: `None` entries are uncolored; colored
/// adjacent nodes must differ.
pub fn check_proper_partial(g: &Graph, colors: &[Option<u64>]) -> Option<Violation> {
    assert_eq!(colors.len(), g.n(), "color vector length must equal n");
    for (u, v) in g.edges() {
        if let (Some(a), Some(b)) = (colors[u], colors[v]) {
            if a == b {
                return Some(Violation::MonochromaticEdge(u, v));
            }
        }
    }
    None
}

/// Checks that `colors` is a proper *list* coloring: proper, and every node's
/// color belongs to its list.
pub fn check_list_coloring(g: &Graph, lists: &[Vec<u64>], colors: &[u64]) -> Option<Violation> {
    assert_eq!(lists.len(), g.n(), "lists length must equal n");
    if let Some(v) = check_proper(g, colors) {
        return Some(v);
    }
    for v in g.nodes() {
        if !lists[v].contains(&colors[v]) {
            return Some(Violation::ColorNotInList(v));
        }
    }
    None
}

/// Checks that a fully-assigned coloring exists (no `None`) and is a proper
/// list coloring; convenience for `Option<u64>` outputs.
pub fn check_complete_list_coloring(
    g: &Graph,
    lists: &[Vec<u64>],
    colors: &[Option<u64>],
) -> Option<Violation> {
    for v in g.nodes() {
        if colors[v].is_none() {
            return Some(Violation::Uncolored(v));
        }
    }
    let full: Vec<u64> = colors.iter().map(|c| c.expect("checked above")).collect();
    check_list_coloring(g, lists, &full)
}

/// Checks that `in_set` is a maximal independent set of `g`.
pub fn check_mis(g: &Graph, in_set: &[bool]) -> Option<Violation> {
    assert_eq!(in_set.len(), g.n(), "set mask length must equal n");
    for (u, v) in g.edges() {
        if in_set[u] && in_set[v] {
            return Some(Violation::AdjacentInSet(u, v));
        }
    }
    for v in g.nodes() {
        if !in_set[v] && !g.neighbors(v).iter().any(|&u| in_set[u]) {
            return Some(Violation::NotMaximal(v));
        }
    }
    None
}

/// Number of distinct colors used.
pub fn count_colors(colors: &[u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn proper_coloring_accepted() {
        let g = generators::ring(4);
        assert_eq!(check_proper(&g, &[0, 1, 0, 1]), None);
    }

    #[test]
    fn monochromatic_edge_detected() {
        let g = generators::ring(4);
        assert_eq!(
            check_proper(&g, &[0, 0, 1, 1]),
            Some(Violation::MonochromaticEdge(0, 1))
        );
    }

    #[test]
    fn list_membership_enforced() {
        let g = generators::path(2);
        let lists = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(check_list_coloring(&g, &lists, &[0, 2]), None);
        assert_eq!(
            check_list_coloring(&g, &lists, &[0, 1]),
            Some(Violation::ColorNotInList(1))
        );
    }

    #[test]
    fn partial_coloring_ignores_uncolored() {
        let g = generators::path(3);
        assert_eq!(check_proper_partial(&g, &[Some(0), None, Some(0)]), None);
        assert_eq!(
            check_proper_partial(&g, &[Some(0), Some(0), None]),
            Some(Violation::MonochromaticEdge(0, 1))
        );
    }

    #[test]
    fn complete_coloring_requires_all_assigned() {
        let g = generators::path(2);
        let lists = vec![vec![0], vec![1]];
        assert_eq!(
            check_complete_list_coloring(&g, &lists, &[Some(0), None]),
            Some(Violation::Uncolored(1))
        );
        assert_eq!(
            check_complete_list_coloring(&g, &lists, &[Some(0), Some(1)]),
            None
        );
    }

    #[test]
    fn mis_checks_independence_and_maximality() {
        let g = generators::path(4);
        assert_eq!(check_mis(&g, &[true, false, true, false]), None);
        assert_eq!(
            check_mis(&g, &[true, true, false, true]),
            Some(Violation::AdjacentInSet(0, 1))
        );
        assert_eq!(
            check_mis(&g, &[true, false, false, false]),
            Some(Violation::NotMaximal(2))
        );
    }

    #[test]
    fn count_colors_dedups() {
        assert_eq!(count_colors(&[3, 1, 3, 2, 1]), 3);
    }
}

//! Exact distance, diameter and connectivity metrics.
//!
//! These run BFS on the *centralized* graph representation; they exist to
//! ground the round-accounting of the simulators (e.g. the `D` factor in
//! Theorem 1.1) and to validate generators and algorithms in tests.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance labels produced by [`bfs`]. `u32::MAX` marks unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source`.
///
/// # Panics
///
/// Panics if `source >= n`.
pub fn bfs(g: &Graph, source: NodeId) -> Vec<u32> {
    assert!(source < g.n(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `v` (max distance to any reachable node); `None` if the
/// graph is disconnected from `v`'s component's perspective is not detected
/// here — use [`is_connected`] first if that matters.
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter (max eccentricity). Returns `None` for disconnected or
/// empty graphs.
///
/// Runs a BFS from every node — O(n·m); fine for the instance sizes used in
/// tests and benches.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 || !is_connected(g) {
        return None;
    }
    (0..g.n()).map(|v| eccentricity(g, v)).max()
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    let dist = bfs(g, 0);
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Connected components: returns `(component_id_per_node, component_count)`.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.n()];
    let mut count = 0;
    for s in 0..g.n() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[s] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Maximum diameter over all connected components (0 for the empty graph).
///
/// This is the quantity that replaces `D` when Theorem 1.1 is applied to
/// disconnected subgraphs (see the remark after Theorem 1.1 in the paper).
pub fn max_component_diameter(g: &Graph) -> u32 {
    let (comp, count) = components(g);
    let mut best = 0;
    for c in 0..count {
        let keep: Vec<bool> = comp.iter().map(|&x| x == c).collect();
        let (sub, _) = g.induced_subgraph(&keep);
        if let Some(d) = diameter(&sub) {
            best = best.max(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
    }

    #[test]
    fn max_component_diameter_of_two_paths() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)]).unwrap();
        assert_eq!(max_component_diameter(&g), 3);
    }

    #[test]
    fn eccentricity_of_star_center_and_leaf() {
        let g = generators::star(6);
        assert_eq!(eccentricity(&g, 0), 1);
        assert_eq!(eccentricity(&g, 3), 2);
    }

    use super::super::graph::Graph;
}

//! Property-based tests for the graph substrate.

use dcl_graphs::{generators, metrics, validation, Graph, GraphBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any gnp graph satisfies the structural invariants: symmetric sorted
    /// adjacency, no self loops, edge count consistency.
    #[test]
    fn gnp_structural_invariants(n in 1usize..60, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        prop_assert_eq!(g.n(), n);
        let mut degree_sum = 0;
        for v in g.nodes() {
            let nb = g.neighbors(v);
            degree_sum += nb.len();
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            prop_assert!(!nb.contains(&v), "no self loop");
            for &u in nb {
                prop_assert!(g.neighbors(u).contains(&v), "symmetric");
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    /// Builder and from_edges agree.
    #[test]
    fn builder_matches_from_edges(edges in prop::collection::btree_set((0usize..20, 0usize..20), 0..40)) {
        let pairs: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let via_edges = Graph::from_edges(20, &pairs).unwrap();
        let mut builder = GraphBuilder::new(20);
        for &(a, b) in &pairs {
            builder.add_edge(a, b).unwrap();
        }
        prop_assert_eq!(via_edges, builder.build());
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distances_are_consistent(n in 2usize..40, p in 0.05f64..0.5, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let dist = metrics::bfs(&g, 0);
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u], dist[v]);
            if du != metrics::UNREACHABLE && dv != metrics::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge endpoints differ by ≤ 1");
            } else {
                prop_assert_eq!(du, dv, "reachability is component-wide");
            }
        }
    }

    /// Induced subgraphs keep exactly the internal edges.
    #[test]
    fn induced_subgraph_edge_set(n in 1usize..30, p in 0.0f64..0.6, seed in any::<u64>(), mask_seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let keep: Vec<bool> = (0..n).map(|v| (mask_seed >> (v % 64)) & 1 == 1).collect();
        let (sub, orig) = g.induced_subgraph(&keep);
        let expected = g
            .edges()
            .filter(|&(u, v)| keep[u] && keep[v])
            .count();
        prop_assert_eq!(sub.m(), expected);
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(orig[a], orig[b]));
        }
    }

    /// The greedy-checker agreement: a coloring where every node's color is
    /// its id is always proper; a constant coloring is proper iff m = 0.
    #[test]
    fn validators_sanity(n in 1usize..30, p in 0.0f64..0.7, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let ids: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(validation::check_proper(&g, &ids), None);
        let constant = vec![0u64; n];
        prop_assert_eq!(validation::check_proper(&g, &constant).is_none(), g.m() == 0);
    }

    /// Components partition the graph and the count matches BFS floods.
    #[test]
    fn components_partition(n in 1usize..40, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let (comp, count) = metrics::components(&g);
        prop_assert!(comp.iter().all(|&c| c < count));
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
    }
}

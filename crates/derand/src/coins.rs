//! Biased coins from a shared seed (Lemma 2.5).
//!
//! Given a proper `K`-coloring ψ of the graph, an accuracy parameter `b`, and
//! per-node probabilities `p_v`, Lemma 2.5 produces coins `(C_v)` from a
//! short shared seed such that
//!
//! - `C_v = 1` with probability `p_v` rounded up to a multiple of `2^{-b}`
//!   (exactly `p_v` when `p_v ∈ {0, 1}`), and
//! - coins of adjacent nodes are independent (they hash *distinct* input
//!   colors through a pairwise independent function).
//!
//! Two backends implement the construction: the [`crate::slice`] family
//! (supports conditional expectations; used by the deterministic algorithms)
//! and the [`crate::kwise`] polynomial family (closest to the paper's
//! Theorem 2.4 statement; used by randomized baselines and in tests).

use crate::kwise::PolyFamily;
use crate::seed::PartialSeed;
use crate::slice::{coin_threshold, SliceFamily};

/// A probability expressed as the exact fraction `num/den` (as it arises in
/// Algorithm 1: `p_u = k₁(u) / |L(u)|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fraction {
    /// Numerator.
    pub num: u64,
    /// Denominator (positive).
    pub den: u64,
}

impl Fraction {
    /// Creates `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        assert!(num <= den, "fraction must be at most 1");
        Fraction { num, den }
    }

    /// The fraction as an `f64`.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

/// Slice-family coin generator: input color ψ(v) ∈ \[K\], threshold per node.
///
/// # Examples
///
/// ```
/// use dcl_derand::coins::{Fraction, SliceCoins};
/// use dcl_derand::seed::PartialSeed;
///
/// // K = 8 input colors, accuracy b = 6.
/// let coins = SliceCoins::new(8, 6);
/// let seed = PartialSeed::from_u64(coins.family().seed_len(), 0x1357_9bdf);
/// let c = coins.flip(&seed, 3, Fraction::new(1, 2));
/// assert!(c == true || c == false);
/// // p = 0 and p = 1 are exact for every seed:
/// assert!(!coins.flip(&seed, 3, Fraction::new(0, 5)));
/// assert!(coins.flip(&seed, 3, Fraction::new(5, 5)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SliceCoins {
    family: SliceFamily,
}

impl SliceCoins {
    /// Coins for input colors in `[input_colors]` with accuracy `b` bits
    /// (`ε = 2^{-b}`).
    ///
    /// # Panics
    ///
    /// Panics if `input_colors == 0` or the widths exceed the
    /// [`SliceFamily`] limits.
    pub fn new(input_colors: u64, b: u32) -> Self {
        assert!(input_colors >= 1, "need at least one input color");
        let m = (64 - input_colors.saturating_sub(1).leading_zeros()).max(1);
        SliceCoins {
            family: SliceFamily::new(m, b),
        }
    }

    /// The underlying hash family (for seed sizing and conditional
    /// probability queries).
    pub fn family(&self) -> SliceFamily {
        self.family
    }

    /// The threshold `T_v` realizing probability `p` (Lemma 2.5).
    pub fn threshold(&self, p: Fraction) -> u64 {
        coin_threshold(p.num, p.den, self.family.output_bits())
    }

    /// Flips the coin for input color `psi` with probability `p` under a
    /// fully fixed seed.
    pub fn flip(&self, seed: &PartialSeed, psi: u64, p: Fraction) -> bool {
        self.family.evaluate(seed, psi) < self.threshold(p)
    }

    /// `Pr[C = 1]` under a partially fixed seed.
    pub fn prob_one(&self, seed: &PartialSeed, psi: u64, p: Fraction) -> f64 {
        self.family.prob_lt(seed, psi, self.threshold(p))
    }
}

/// Polynomial-family coin generator (the paper's Theorem 2.4 route).
#[derive(Debug, Clone, Copy)]
pub struct PolyCoins {
    family: PolyFamily,
    b: u32,
}

impl PolyCoins {
    /// Coins for input colors in `[input_colors]` with accuracy `b` bits.
    /// The truncation bias of the polynomial family adds at most `2^{-20}`
    /// to the coin probability (default guard bits).
    pub fn new(input_colors: u64, b: u32) -> Self {
        PolyCoins {
            family: PolyFamily::new(2, input_colors, b),
            b,
        }
    }

    /// Seed length in bits.
    pub fn seed_len(&self) -> usize {
        self.family.seed_len()
    }

    /// Flips the coin for input color `psi` with probability `p` using the
    /// hash drawn from `seed_value`.
    pub fn flip(&self, seed_value: u64, psi: u64, p: Fraction) -> bool {
        let h = self.family.hash_from_u64(seed_value);
        h.eval(psi) < coin_threshold(p.num, p.den, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_coin_probability_is_rounded_up_exactly() {
        // b = 3, p = 1/3 → threshold 3, probability 3/8 over a free seed.
        let coins = SliceCoins::new(4, 3);
        let seed = PartialSeed::new(coins.family().seed_len());
        let p = coins.prob_one(&seed, 2, Fraction::new(1, 3));
        assert!((p - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn slice_coin_exact_at_extremes_for_every_seed() {
        let coins = SliceCoins::new(4, 2);
        PartialSeed::new(coins.family().seed_len()).for_each_completion(|s| {
            assert!(!coins.flip(s, 1, Fraction::new(0, 4)));
            assert!(coins.flip(s, 1, Fraction::new(4, 4)));
        });
    }

    #[test]
    fn slice_coins_adjacent_independence_by_enumeration() {
        // Two nodes with distinct ψ and both p = 1/2 over b = 1: the four
        // outcomes must be equally likely.
        let coins = SliceCoins::new(2, 1);
        let mut histogram = [0u32; 4];
        PartialSeed::new(coins.family().seed_len()).for_each_completion(|s| {
            let a = coins.flip(s, 0, Fraction::new(1, 2));
            let b = coins.flip(s, 1, Fraction::new(1, 2));
            histogram[(usize::from(a) << 1) | usize::from(b)] += 1;
        });
        let total: u32 = histogram.iter().sum();
        assert!(histogram.iter().all(|&c| c * 4 == total), "{histogram:?}");
    }

    #[test]
    fn slice_coin_empirical_probability_close() {
        let coins = SliceCoins::new(64, 8);
        let p = Fraction::new(3, 7);
        let trials = 2000u32;
        let mut ones = 0u32;
        for t in 0..trials {
            // Pseudo-random full seeds via from_u64 over two words worth of
            // bits is not possible (> 64 bits), so build per-slice.
            let mut seed = PartialSeed::new(coins.family().seed_len());
            let mut state = 0x9e37u64.wrapping_mul(u64::from(t) + 1);
            for i in 0..coins.family().seed_len() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                seed.fix(i, state >> 33 & 1 == 1);
            }
            if coins.flip(&seed, 17, p) {
                ones += 1;
            }
        }
        let freq = f64::from(ones) / f64::from(trials);
        assert!((freq - p.as_f64()).abs() < 0.05, "freq={freq}");
    }

    #[test]
    fn fraction_validation() {
        assert_eq!(Fraction::new(2, 4).as_f64(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn fraction_rejects_above_one() {
        let _ = Fraction::new(5, 4);
    }

    #[test]
    fn poly_coins_extremes_exact() {
        let coins = PolyCoins::new(100, 8);
        for seed in 0..50u64 {
            assert!(!coins.flip(seed, 42, Fraction::new(0, 3)));
            assert!(coins.flip(seed, 42, Fraction::new(3, 3)));
        }
    }

    #[test]
    fn poly_coins_empirical_probability_close() {
        let coins = PolyCoins::new(100, 10);
        let p = Fraction::new(2, 5);
        let trials = 4000u64;
        let ones = (0..trials).filter(|&s| coins.flip(s, 7, p)).count();
        let freq = ones as f64 / trials as f64;
        assert!((freq - p.as_f64()).abs() < 0.05, "freq={freq}");
    }
}

//! Partially fixed random seeds.
//!
//! The method of conditional expectations (Lemma 2.6) walks through the bits
//! of a shared random seed, fixing one bit at a time. [`PartialSeed`] tracks
//! which bits have been fixed and to what value; the remaining bits are
//! understood to be uniformly random and independent.

/// A seed of `len` bits, each either fixed to a boolean or still free.
///
/// # Examples
///
/// ```
/// use dcl_derand::seed::PartialSeed;
///
/// let mut s = PartialSeed::new(4);
/// assert_eq!(s.free_count(), 4);
/// s.fix(2, true);
/// assert_eq!(s.get(2), Some(true));
/// assert_eq!(s.get(0), None);
/// assert_eq!(s.free_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialSeed {
    bits: Vec<Option<bool>>,
}

impl PartialSeed {
    /// A fully free seed of `len` bits.
    pub fn new(len: usize) -> Self {
        PartialSeed {
            bits: vec![None; len],
        }
    }

    /// A fully fixed seed taken from the low bits of `value`
    /// (bit `i` of the seed = bit `i` of `value`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(len: usize, value: u64) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        PartialSeed {
            bits: (0..len).map(|i| Some(value >> i & 1 == 1)).collect(),
        }
    }

    /// Number of bits in the seed.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the seed has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The value of bit `i`, or `None` if still free.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.bits[i]
    }

    /// Fixes bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or bit `i` was already fixed (fixing a
    /// bit twice indicates a bug in the derandomization schedule).
    pub fn fix(&mut self, i: usize, value: bool) {
        assert!(self.bits[i].is_none(), "seed bit {i} fixed twice");
        self.bits[i] = Some(value);
    }

    /// Number of still-free bits.
    pub fn free_count(&self) -> usize {
        self.bits.iter().filter(|b| b.is_none()).count()
    }

    /// Whether every bit has been fixed.
    pub fn is_complete(&self) -> bool {
        self.free_count() == 0
    }

    /// Indices of still-free bits, in increasing order.
    pub fn free_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.bits[i].is_none())
            .collect()
    }

    /// A copy with bit `i` fixed to `value` (for candidate evaluation).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PartialSeed::fix`].
    pub fn with_fixed(&self, i: usize, value: bool) -> Self {
        let mut c = self.clone();
        c.fix(i, value);
        c
    }

    /// The `len`-bit window starting at `start`, packed as `(fixed, values)`
    /// bitsets: bit `k` of `fixed` is set iff seed bit `start + k` is fixed,
    /// and then bit `k` of `values` holds its value (0 for free bits).
    ///
    /// This is the SoA view of one hash-family slice: `SliceFamily::bit_form`
    /// reduces to two AND-parity operations on it instead of `m + 1`
    /// per-bit `Option` reads.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the seed or is wider than 64 bits.
    pub fn packed(&self, start: usize, len: usize) -> (u64, u64) {
        assert!(len <= 64, "packed window wider than 64 bits");
        let mut fixed = 0u64;
        let mut values = 0u64;
        for (k, bit) in self.bits[start..start + len].iter().enumerate() {
            if let Some(v) = *bit {
                fixed |= 1 << k;
                if v {
                    values |= 1 << k;
                }
            }
        }
        (fixed, values)
    }

    /// Enumerates all completions of this seed, calling `f` with each fully
    /// fixed seed. Intended for brute-force reference computations in tests.
    ///
    /// # Panics
    ///
    /// Panics if more than 24 bits are free (2²⁴ completions).
    pub fn for_each_completion<F: FnMut(&PartialSeed)>(&self, mut f: F) {
        let free = self.free_indices();
        assert!(free.len() <= 24, "too many free bits to enumerate");
        let mut work = self.clone();
        for assignment in 0u64..(1u64 << free.len()) {
            for (j, &idx) in free.iter().enumerate() {
                work.bits[idx] = Some(assignment >> j & 1 == 1);
            }
            f(&work);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_and_query() {
        let mut s = PartialSeed::new(3);
        s.fix(0, true);
        s.fix(2, false);
        assert_eq!(s.get(0), Some(true));
        assert_eq!(s.get(1), None);
        assert_eq!(s.get(2), Some(false));
        assert_eq!(s.free_indices(), vec![1]);
        assert!(!s.is_complete());
        s.fix(1, true);
        assert!(s.is_complete());
    }

    #[test]
    #[should_panic(expected = "fixed twice")]
    fn double_fix_panics() {
        let mut s = PartialSeed::new(2);
        s.fix(0, true);
        s.fix(0, false);
    }

    #[test]
    fn from_u64_sets_low_bits() {
        let s = PartialSeed::from_u64(5, 0b10110);
        assert_eq!(s.get(0), Some(false));
        assert_eq!(s.get(1), Some(true));
        assert_eq!(s.get(2), Some(true));
        assert_eq!(s.get(3), Some(false));
        assert_eq!(s.get(4), Some(true));
    }

    #[test]
    fn completion_enumeration_covers_all() {
        let mut s = PartialSeed::new(3);
        s.fix(1, true);
        let mut seen = Vec::new();
        s.for_each_completion(|c| {
            let v: u64 = (0..3).map(|i| (c.get(i).unwrap() as u64) << i).sum();
            seen.push(v);
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0b010, 0b011, 0b110, 0b111]);
    }

    #[test]
    fn with_fixed_does_not_mutate_original() {
        let s = PartialSeed::new(2);
        let t = s.with_fixed(1, true);
        assert_eq!(s.get(1), None);
        assert_eq!(t.get(1), Some(true));
    }

    #[test]
    fn packed_matches_per_bit_reads() {
        let mut s = PartialSeed::new(10);
        s.fix(0, true);
        s.fix(3, false);
        s.fix(4, true);
        s.fix(9, true);
        for (start, len) in [(0, 10), (2, 5), (8, 2), (5, 0)] {
            let (fixed, values) = s.packed(start, len);
            for k in 0..len {
                match s.get(start + k) {
                    Some(v) => {
                        assert_eq!(fixed >> k & 1, 1, "bit {k} of window {start}+{len}");
                        assert_eq!(values >> k & 1 == 1, v);
                    }
                    None => {
                        assert_eq!(fixed >> k & 1, 0);
                        assert_eq!(values >> k & 1, 0);
                    }
                }
            }
            assert_eq!(fixed >> len, 0);
            assert_eq!(values >> len, 0);
        }
    }
}

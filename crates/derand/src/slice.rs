//! The slice-independent inner-product family.
//!
//! For input width `m` and output width `b`, the seed consists of `b`
//! independent *slices*; slice `i` holds a vector `r_i ∈ GF(2)^m` and a bit
//! `s_i`. The `b`-bit output for input `x` is
//!
//! ```text
//! z(x)[i] = ⟨r_i, x⟩ ⊕ s_i          (inner product over GF(2))
//! ```
//!
//! **Pairwise independence.** For `x ≠ y`, the pair `(z(x)[i], z(y)[i])` is
//! uniform on `{0,1}²` (the difference `⟨r_i, x⊕y⟩` is uniform because
//! `x⊕y ≠ 0`, and `s_i` makes the marginal uniform); slices use disjoint seed
//! bits, so `(z(x), z(y))` is uniform on `[2^b]²`. This is exactly the
//! property Lemma 2.5 needs for the coins of adjacent nodes (which hold
//! distinct input colors).
//!
//! **Conditional tractability.** Under a *partially fixed* seed, each output
//! bit is an affine form over the free seed bits of its own slice. For any
//! pair of inputs, the joint distribution of the two output bits at each
//! position falls into one of five closed-form cases ([`PairDist`]), and the
//! positions are independent — so `Pr[z(x) < T_x ∧ z(y) < T_y]` is computed
//! by an exact `O(b)`-time digit DP ([`SliceFamily::prob_joint_lt`]). This is
//! what makes the method of conditional expectations (Lemma 2.6) efficiently
//! implementable; see `DESIGN.md` §2.1.
//!
//! The DP itself ([`BitForm`], [`PairDist`], and the `prob_*` evaluators)
//! lives in `dcl_kernels` as an arch-dispatched kernel family (reference /
//! scalar-SoA / SIMD / incremental tiers, proven bit-identical); this
//! module re-exports the types and keeps the seed-aware API on top.
//!
//! # The monotone seed-schedule contract
//!
//! The Lemma 2.6 drivers fix seed bits in **increasing index order**, and
//! [`SliceFamily::slice_of_seed_bit`] is monotone nondecreasing in the
//! index (`slice = index / (m+1)`). Together with the locality of
//! [`SliceFamily::update_forms_on_fix`] — fixing a bit of slice `s`
//! mutates only `forms[s]` — this gives the invariant the kernels'
//! incremental tier relies on: *while the schedule is inside one slice's
//! window, every form at any other position is frozen*. A per-edge
//! [`dcl_kernels::digit_dp::EdgeDpCache`] can therefore memoize the DP
//! transfer over the untouched positions and replay only the current
//! slice and the digits below it, with the float operation sequence — and
//! hence every probability, bit for bit — unchanged. The
//! `schedule_is_slice_monotone` test pins the layout half of the
//! contract; `update_forms_on_fix`'s implementation (and its
//! `form_with_fix` mirror) pins the locality half.

use crate::seed::PartialSeed;

pub use dcl_kernels::digit_dp::PackedForms;
pub use dcl_kernels::{pair_dist_of_forms, BitForm, PairDist};

/// The slice-independent inner-product family `h: {0,1}^m → {0,1}^b`.
///
/// # Examples
///
/// ```
/// use dcl_derand::slice::SliceFamily;
/// use dcl_derand::seed::PartialSeed;
///
/// let fam = SliceFamily::new(4, 3);
/// assert_eq!(fam.seed_len(), 3 * 5);
/// let seed = PartialSeed::from_u64(fam.seed_len(), 0x1234);
/// let z = fam.evaluate(&seed, 0b1010);
/// assert!(z < 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceFamily {
    m: u32,
    b: u32,
}

impl SliceFamily {
    /// Creates the family for `m`-bit inputs and `b`-bit outputs.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ m ≤ 63` and `1 ≤ b ≤ 63`.
    pub fn new(m: u32, b: u32) -> Self {
        assert!((1..=63).contains(&m), "input width must be in 1..=63");
        assert!((1..=63).contains(&b), "output width must be in 1..=63");
        SliceFamily { m, b }
    }

    /// Input width in bits.
    pub fn input_bits(&self) -> u32 {
        self.m
    }

    /// Output width in bits.
    pub fn output_bits(&self) -> u32 {
        self.b
    }

    /// Total seed length: `b · (m + 1)` bits.
    pub fn seed_len(&self) -> usize {
        self.b as usize * (self.m as usize + 1)
    }

    /// The slice an absolute seed-bit index belongs to.
    pub fn slice_of_seed_bit(&self, index: usize) -> u32 {
        (index / (self.m as usize + 1)) as u32
    }

    /// Affine form of output bit `slice` for input `x` under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not fit in `m` bits, `slice ≥ b`, or the seed has
    /// the wrong length.
    pub fn bit_form(&self, seed: &PartialSeed, slice: u32, x: u64) -> BitForm {
        assert!(x >> self.m == 0, "input {x} wider than {} bits", self.m);
        assert!(slice < self.b, "slice out of range");
        assert_eq!(seed.len(), self.seed_len(), "seed length mismatch");
        // Packed view of the slice's seed window: bits 0..m are r_i, bit m
        // is s_i. The per-position loop collapses to word-parallel bit
        // algebra — free input positions keep their mask bit, fixed ones
        // fold their value into the offset parity.
        let window = self.m as usize + 1;
        let (fixed, values) = seed.packed(slice as usize * window, window);
        let mask = x & !fixed;
        let mut offset = (x & fixed & values).count_ones() & 1 == 1;
        let s_free = fixed >> self.m & 1 == 0;
        if !s_free {
            offset ^= values >> self.m & 1 == 1;
        }
        BitForm {
            offset,
            mask,
            s_free,
        }
    }

    /// Joint distribution of output bit `slice` for the two inputs `x`, `y`.
    pub fn pair_dist(&self, seed: &PartialSeed, slice: u32, x: u64, y: u64) -> PairDist {
        let fx = self.bit_form(seed, slice, x);
        let fy = self.bit_form(seed, slice, y);
        pair_dist_of_forms(fx, fy)
    }

    /// All `b` bit forms for input `x` (index `i` = output bit `i`).
    /// Callers on hot paths cache these per distinct input and update them
    /// incrementally with [`SliceFamily::update_forms_on_fix`].
    pub fn forms_for(&self, seed: &PartialSeed, x: u64) -> Vec<BitForm> {
        (0..self.b).map(|i| self.bit_form(seed, i, x)).collect()
    }

    /// Incrementally updates cached `forms` (as produced by
    /// [`SliceFamily::forms_for`] for input `x`) after seed bit `index` was
    /// fixed to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the seed layout.
    pub fn update_forms_on_fix(&self, forms: &mut [BitForm], x: u64, index: usize, value: bool) {
        assert!(index < self.seed_len(), "seed bit index out of range");
        let slice = self.slice_of_seed_bit(index) as usize;
        let within = index - slice * (self.m as usize + 1);
        let form = &mut forms[slice];
        if within == self.m as usize {
            // The s_i bit.
            debug_assert!(form.s_free, "s bit fixed twice");
            form.s_free = false;
            form.offset ^= value;
        } else if x >> within & 1 == 1 {
            debug_assert!(form.mask >> within & 1 == 1, "r bit fixed twice");
            form.mask &= !(1u64 << within);
            form.offset ^= value;
        }
    }

    /// A copy of `form` (the bit form of input `x` for the slice containing
    /// seed bit `index`) after seed bit `index` is fixed to `value`. Pure
    /// counterpart of [`SliceFamily::update_forms_on_fix`] used to evaluate
    /// candidate bit values without mutating caches.
    pub fn form_with_fix(&self, mut form: BitForm, x: u64, index: usize, value: bool) -> BitForm {
        assert!(index < self.seed_len(), "seed bit index out of range");
        let slice = self.slice_of_seed_bit(index) as usize;
        let within = index - slice * (self.m as usize + 1);
        if within == self.m as usize {
            debug_assert!(form.s_free, "s bit fixed twice");
            form.s_free = false;
            form.offset ^= value;
        } else if x >> within & 1 == 1 {
            debug_assert!(form.mask >> within & 1 == 1, "r bit fixed twice");
            form.mask &= !(1u64 << within);
            form.offset ^= value;
        }
        form
    }

    /// All `b` bit forms for input `x`, packed in the kernels' SoA layout
    /// ([`PackedForms`]). The packed layout is what the clique/MPC drivers
    /// keep as per-candidate scratch: the digit-DP entry points
    /// (`joint_interval_packed`, `joint_coin_probs_packed`) consume it
    /// directly, so the per-call pack step disappears from the hot loop.
    pub fn packed_forms_for(&self, seed: &PartialSeed, x: u64) -> PackedForms {
        let forms = self.forms_for(seed, x);
        PackedForms::from_forms(&forms)
    }

    /// [`SliceFamily::update_forms_on_fix`] on the packed layout: O(1)
    /// bitset surgery on the slice containing seed bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the seed layout.
    pub fn update_packed_on_fix(
        &self,
        packed: &mut PackedForms,
        x: u64,
        index: usize,
        value: bool,
    ) {
        assert!(index < self.seed_len(), "seed bit index out of range");
        let slice = self.slice_of_seed_bit(index) as usize;
        let updated = self.form_with_fix(packed.form(slice), x, index, value);
        packed.set_form(slice, updated);
    }

    /// `Pr[z < t]` from precomputed bit forms.
    pub fn prob_lt_forms(&self, forms: &[BitForm], t: u64) -> f64 {
        self.prob_lt_override(forms, None, t)
    }

    /// [`SliceFamily::prob_lt_forms`] with one form overridden: position
    /// `i` uses `f` instead of `forms[i]` when `over = Some((i, f))`.
    pub fn prob_lt_override(
        &self,
        forms: &[BitForm],
        over: Option<(usize, BitForm)>,
        t: u64,
    ) -> f64 {
        debug_assert_eq!(forms.len(), self.b as usize, "forms length mismatch");
        dcl_kernels::digit_dp::prob_lt_override(forms, over, t)
    }

    /// `Pr[z_x < t_x ∧ z_y < t_y]` from precomputed bit forms of the two
    /// inputs (both under the *same* partial seed).
    pub fn prob_joint_lt_forms(
        &self,
        forms_x: &[BitForm],
        t_x: u64,
        forms_y: &[BitForm],
        t_y: u64,
    ) -> f64 {
        self.prob_joint_lt_override(forms_x, None, t_x, forms_y, None, t_y)
    }

    /// [`SliceFamily::prob_joint_lt_forms`] with per-input overrides at one
    /// position each (used to evaluate a candidate value for a seed bit).
    #[allow(clippy::too_many_arguments)]
    pub fn prob_joint_lt_override(
        &self,
        forms_x: &[BitForm],
        over_x: Option<(usize, BitForm)>,
        t_x: u64,
        forms_y: &[BitForm],
        over_y: Option<(usize, BitForm)>,
        t_y: u64,
    ) -> f64 {
        debug_assert_eq!(forms_x.len(), self.b as usize, "forms length mismatch");
        dcl_kernels::digit_dp::prob_joint_lt_override(forms_x, over_x, t_x, forms_y, over_y, t_y)
    }

    /// Joint coin probabilities `[p00, p01, p10, p11]` from precomputed
    /// forms.
    pub fn joint_coin_probs_forms(
        &self,
        forms_x: &[BitForm],
        t_x: u64,
        forms_y: &[BitForm],
        t_y: u64,
    ) -> [f64; 4] {
        self.joint_coin_probs_override(forms_x, None, t_x, forms_y, None, t_y)
    }

    /// [`SliceFamily::joint_coin_probs_forms`] with per-input overrides at
    /// one position each.
    #[allow(clippy::too_many_arguments)]
    pub fn joint_coin_probs_override(
        &self,
        forms_x: &[BitForm],
        over_x: Option<(usize, BitForm)>,
        t_x: u64,
        forms_y: &[BitForm],
        over_y: Option<(usize, BitForm)>,
        t_y: u64,
    ) -> [f64; 4] {
        debug_assert_eq!(forms_x.len(), self.b as usize, "forms length mismatch");
        dcl_kernels::digit_dp::joint_coin_probs_override(forms_x, over_x, t_x, forms_y, over_y, t_y)
    }

    /// Evaluates the hash on a fully fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if any seed bit relevant to the output is still free.
    pub fn evaluate(&self, seed: &PartialSeed, x: u64) -> u64 {
        let mut z = 0u64;
        for i in 0..self.b {
            let form = self.bit_form(seed, i, x);
            assert!(form.is_known(), "seed slice {i} not fully fixed");
            z |= u64::from(form.offset) << i;
        }
        z
    }

    /// `Pr[z(x) < t]` over the free seed bits. `t` may be up to `2^b`
    /// (inclusive), in which case the probability is 1.
    pub fn prob_lt(&self, seed: &PartialSeed, x: u64, t: u64) -> f64 {
        self.prob_lt_forms(&self.forms_for(seed, x), t)
    }

    /// `Pr[z(x) < t_x ∧ z(y) < t_y]` over the free seed bits, exact digit DP.
    ///
    /// States track, per coordinate, whether the output prefix is still equal
    /// to the threshold prefix or already strictly less; mass where a
    /// coordinate exceeds its threshold prefix is discarded.
    pub fn prob_joint_lt(&self, seed: &PartialSeed, x: u64, t_x: u64, y: u64, t_y: u64) -> f64 {
        self.prob_joint_lt_forms(&self.forms_for(seed, x), t_x, &self.forms_for(seed, y), t_y)
    }

    /// Joint probabilities of the two threshold coins
    /// `(C_x, C_y) = ([z(x) < t_x], [z(y) < t_y])` as `[p00, p01, p10, p11]`.
    pub fn joint_coin_probs(
        &self,
        seed: &PartialSeed,
        x: u64,
        t_x: u64,
        y: u64,
        t_y: u64,
    ) -> [f64; 4] {
        let p11 = self.prob_joint_lt(seed, x, t_x, y, t_y);
        let px = self.prob_lt(seed, x, t_x);
        let py = self.prob_lt(seed, y, t_y);
        let p10 = (px - p11).max(0.0);
        let p01 = (py - p11).max(0.0);
        let p00 = (1.0 - px - py + p11).max(0.0);
        [p00, p01, p10, p11]
    }
}

/// The coin threshold of Lemma 2.5: the number of hash values `k ∈ [2^b]`
/// with `k/2^b < num/den`, i.e. `⌈num · 2^b / den⌉`. The resulting coin
/// probability `T/2^b` equals `num/den` rounded up to a multiple of `2^{-b}`,
/// and is exact at 0 and 1.
///
/// # Panics
///
/// Panics if `den == 0` or `num > den`.
#[must_use]
pub fn coin_threshold(num: u64, den: u64, b: u32) -> u64 {
    assert!(den > 0, "denominator must be positive");
    assert!(num <= den, "probability must be at most 1");
    let scaled = (u128::from(num) << b) + u128::from(den) - 1;
    (scaled / u128::from(den)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force `Pr[pred(seed)]` by enumerating free seed bits.
    fn brute_force_prob(seed: &PartialSeed, mut pred: impl FnMut(&PartialSeed) -> bool) -> f64 {
        let mut hits = 0u64;
        let mut total = 0u64;
        seed.for_each_completion(|s| {
            total += 1;
            if pred(s) {
                hits += 1;
            }
        });
        hits as f64 / total as f64
    }

    #[test]
    fn pairwise_independence_exhaustive() {
        // m = 2, b = 2 → 6 seed bits, 64 seeds. For every pair x ≠ y the
        // joint distribution of (z(x), z(y)) must be uniform on [4]².
        let fam = SliceFamily::new(2, 2);
        for x in 0u64..4 {
            for y in 0u64..4 {
                if x == y {
                    continue;
                }
                let mut histogram = [[0u32; 4]; 4];
                PartialSeed::new(fam.seed_len()).for_each_completion(|s| {
                    let zx = fam.evaluate(s, x) as usize;
                    let zy = fam.evaluate(s, y) as usize;
                    histogram[zx][zy] += 1;
                });
                for row in &histogram {
                    for &count in row {
                        assert_eq!(count, 4, "joint distribution must be uniform");
                    }
                }
            }
        }
    }

    #[test]
    fn marginal_uniform_for_every_input() {
        let fam = SliceFamily::new(3, 2);
        for x in 0u64..8 {
            let mut histogram = [0u32; 4];
            PartialSeed::new(fam.seed_len()).for_each_completion(|s| {
                histogram[fam.evaluate(s, x) as usize] += 1;
            });
            let expected = (1u32 << fam.seed_len()) / 4;
            assert!(histogram.iter().all(|&c| c == expected));
        }
    }

    #[test]
    fn prob_lt_on_free_seed_is_uniform() {
        let fam = SliceFamily::new(4, 3);
        let seed = PartialSeed::new(fam.seed_len());
        for t in 0u64..=8 {
            let expected = t.min(8) as f64 / 8.0;
            assert!((fam.prob_lt(&seed, 0b1011, t) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn prob_lt_matches_brute_force_on_partial_seeds() {
        let fam = SliceFamily::new(3, 3); // 12 seed bits
        for pattern in [0x0u64, 0x5a3, 0xfff, 0x2b1] {
            // Fix every other bit according to `pattern`.
            let mut seed = PartialSeed::new(fam.seed_len());
            for i in (0..fam.seed_len()).step_by(2) {
                seed.fix(i, pattern >> i & 1 == 1);
            }
            for x in [0u64, 3, 5, 7] {
                for t in [0u64, 1, 3, 5, 8] {
                    let dp = fam.prob_lt(&seed, x, t);
                    let bf = brute_force_prob(&seed, |s| fam.evaluate(s, x) < t);
                    assert!((dp - bf).abs() < 1e-12, "x={x} t={t}: dp={dp} bf={bf}");
                }
            }
        }
    }

    #[test]
    fn joint_lt_matches_brute_force_on_partial_seeds() {
        let fam = SliceFamily::new(3, 3);
        for fixing in [
            vec![],
            vec![(0, true), (4, false), (8, true)],
            vec![(1, true), (2, true), (3, false), (7, true), (11, false)],
        ] {
            let mut seed = PartialSeed::new(fam.seed_len());
            for (i, v) in fixing {
                seed.fix(i, v);
            }
            for (x, y) in [(1u64, 2u64), (3, 5), (6, 7), (0, 4)] {
                for (tx, ty) in [(3u64, 5u64), (1, 8), (8, 8), (0, 4), (7, 2)] {
                    let dp = fam.prob_joint_lt(&seed, x, tx, y, ty);
                    let bf = brute_force_prob(&seed, |s| {
                        fam.evaluate(s, x) < tx && fam.evaluate(s, y) < ty
                    });
                    assert!(
                        (dp - bf).abs() < 1e-12,
                        "x={x} y={y} tx={tx} ty={ty}: dp={dp} bf={bf}"
                    );
                }
            }
        }
    }

    #[test]
    fn joint_handles_equal_inputs() {
        // Equal inputs give perfectly correlated outputs; the DP must still
        // be exact (the algorithm only relies on independence for adjacent —
        // hence differently-colored — nodes, but the API stays correct).
        let fam = SliceFamily::new(2, 2);
        let seed = PartialSeed::new(fam.seed_len());
        let p = fam.prob_joint_lt(&seed, 3, 2, 3, 3);
        // z uniform on [4]: both events ⇔ z < 2 → 1/2.
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coin_probs_sum_to_one() {
        let fam = SliceFamily::new(3, 4);
        let mut seed = PartialSeed::new(fam.seed_len());
        seed.fix(0, true);
        seed.fix(5, false);
        let q = fam.joint_coin_probs(&seed, 2, 7, 5, 12);
        let sum: f64 = q.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coin_threshold_rounds_up() {
        // p = 1/3, b = 4: ⌈16/3⌉ = 6 → coin probability 6/16 ∈ [1/3, 1/3 + 1/16).
        assert_eq!(coin_threshold(1, 3, 4), 6);
        // Exact dyadic probabilities are preserved.
        assert_eq!(coin_threshold(1, 2, 4), 8);
        // Extremes are exact (Lemma 2.5).
        assert_eq!(coin_threshold(0, 7, 4), 0);
        assert_eq!(coin_threshold(7, 7, 4), 16);
    }

    #[test]
    fn fixing_all_bits_determines_output() {
        let fam = SliceFamily::new(5, 4);
        let seed = PartialSeed::from_u64(fam.seed_len(), 0xdead_beef);
        let z1 = fam.evaluate(&seed, 0b10110);
        let z2 = fam.evaluate(&seed, 0b10110);
        assert_eq!(z1, z2);
        assert!(z1 < 16);
        // prob_lt degenerates to an indicator.
        assert_eq!(fam.prob_lt(&seed, 0b10110, z1), 0.0);
        assert_eq!(fam.prob_lt(&seed, 0b10110, z1 + 1), 1.0);
    }

    #[test]
    fn incremental_form_updates_match_recomputation() {
        let fam = SliceFamily::new(4, 3);
        let xs = [0u64, 5, 9, 15];
        let mut seed = PartialSeed::new(fam.seed_len());
        let mut cached: Vec<Vec<BitForm>> = xs.iter().map(|&x| fam.forms_for(&seed, x)).collect();
        // Fix bits in a scrambled order, checking the incremental update
        // against a fresh recomputation after every step.
        let order: Vec<usize> = (0..fam.seed_len())
            .map(|i| (i * 7) % fam.seed_len())
            .collect();
        for (step, &idx) in order.iter().enumerate() {
            let value = step % 3 == 0;
            seed.fix(idx, value);
            for (x, forms) in xs.iter().zip(cached.iter_mut()) {
                fam.update_forms_on_fix(forms, *x, idx, value);
                assert_eq!(
                    *forms,
                    fam.forms_for(&seed, *x),
                    "x={x} after fixing bit {idx}"
                );
            }
        }
    }

    #[test]
    fn forms_based_probs_match_seed_based() {
        let fam = SliceFamily::new(3, 4);
        let mut seed = PartialSeed::new(fam.seed_len());
        for i in (0..fam.seed_len()).step_by(3) {
            seed.fix(i, i % 2 == 0);
        }
        for (x, y) in [(1u64, 6u64), (2, 5)] {
            let fx = fam.forms_for(&seed, x);
            let fy = fam.forms_for(&seed, y);
            for (tx, ty) in [(5u64, 9u64), (16, 3), (0, 12)] {
                assert_eq!(fam.prob_lt(&seed, x, tx), fam.prob_lt_forms(&fx, tx));
                assert_eq!(
                    fam.prob_joint_lt(&seed, x, tx, y, ty),
                    fam.prob_joint_lt_forms(&fx, tx, &fy, ty)
                );
                let q = fam.joint_coin_probs_forms(&fx, tx, &fy, ty);
                let sum: f64 = q.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn slice_of_seed_bit_layout() {
        let fam = SliceFamily::new(3, 2);
        assert_eq!(fam.slice_of_seed_bit(0), 0);
        assert_eq!(fam.slice_of_seed_bit(3), 0); // s_0
        assert_eq!(fam.slice_of_seed_bit(4), 1);
        assert_eq!(fam.slice_of_seed_bit(7), 1); // s_1
    }

    /// The layout half of the monotone seed-schedule contract (module
    /// docs): fixing seed bits in index order visits slices in
    /// nondecreasing order, so the incremental tier's prefix cache is
    /// sound for any driver that walks the seed front to back.
    #[test]
    fn schedule_is_slice_monotone() {
        for (m, b) in [(1u32, 1u32), (3, 4), (10, 14), (63, 63)] {
            let fam = SliceFamily::new(m, b);
            let mut prev = 0u32;
            for index in 0..fam.seed_len() {
                let slice = fam.slice_of_seed_bit(index);
                assert!(slice >= prev, "slice regressed at index {index}");
                assert!(slice < b, "slice out of range at index {index}");
                prev = slice;
            }
            assert_eq!(prev, b - 1, "schedule must end in the last slice");
        }
    }

    /// Packed scratch stays in lockstep with the AoS forms across a full
    /// schedule of fixes, and the packed evaluators match the AoS ones.
    #[test]
    fn packed_forms_track_fixes() {
        let fam = SliceFamily::new(4, 3);
        let mut seed = PartialSeed::new(fam.seed_len());
        let (x, y) = (0b1010u64, 0b0111u64);
        let mut forms_x = fam.forms_for(&seed, x);
        let mut packed_x = fam.packed_forms_for(&seed, x);
        let mut forms_y = fam.forms_for(&seed, y);
        let mut packed_y = fam.packed_forms_for(&seed, y);
        for index in 0..fam.seed_len() {
            let value = index % 3 == 1;
            seed.fix(index, value);
            fam.update_forms_on_fix(&mut forms_x, x, index, value);
            fam.update_packed_on_fix(&mut packed_x, x, index, value);
            fam.update_forms_on_fix(&mut forms_y, y, index, value);
            fam.update_packed_on_fix(&mut packed_y, y, index, value);
            for i in 0..fam.output_bits() as usize {
                assert_eq!(packed_x.form(i), forms_x[i], "bit {index} position {i}");
                assert_eq!(packed_y.form(i), forms_y[i], "bit {index} position {i}");
            }
            for (tx, ty) in [(3u64, 7u64), (8, 8), (0, 5)] {
                let aos = fam.joint_coin_probs_forms(&forms_x, tx, &forms_y, ty);
                let packed =
                    dcl_kernels::digit_dp::joint_coin_probs_packed(&packed_x, tx, &packed_y, ty);
                assert_eq!(aos.map(f64::to_bits), packed.map(f64::to_bits));
            }
        }
    }
}

//! Pseudorandomness toolkit for distributed derandomization.
//!
//! The paper derandomizes a zero-round randomized coloring step by (1)
//! producing each node's biased coin from a short *shared random seed* such
//! that the coins of adjacent nodes are pairwise independent (Lemma 2.5 /
//! Theorem 2.4), and (2) fixing the seed bit-by-bit with the method of
//! conditional expectations (Lemma 2.6). This crate provides everything
//! needed for both steps:
//!
//! - [`kwise`] — k-wise independent hash families via degree-(k−1)
//!   polynomials over a prime field (the classic construction behind the
//!   paper's Theorem 2.4), plus deterministic Miller–Rabin primality testing
//!   for parameter selection;
//! - [`slice`](mod@slice) — the *slice-independent inner-product family* used by our
//!   deterministic algorithms: pairwise-independent `b`-bit values whose
//!   conditional distribution under a *partially fixed* seed is computable in
//!   `O(b)` time per node pair (see `DESIGN.md` §2.1 for the substitution
//!   rationale);
//! - [`seed`] — partially-fixed seed bookkeeping for the method of
//!   conditional expectations;
//! - [`coins`] — the biased-coin construction of Lemma 2.5 on top of either
//!   family.
//!
//! # Examples
//!
//! ```
//! use dcl_derand::slice::SliceFamily;
//! use dcl_derand::seed::PartialSeed;
//!
//! // 4-bit outputs from 3-bit inputs.
//! let fam = SliceFamily::new(3, 4);
//! let mut seed = PartialSeed::new(fam.seed_len());
//! // With a completely free seed, z is uniform: Pr[z < 6] = 6/16.
//! let p = fam.prob_lt(&seed, 0b101, 6);
//! assert!((p - 6.0 / 16.0).abs() < 1e-12);
//! // Fix the whole seed to zeros: z becomes deterministic.
//! for i in 0..fam.seed_len() { seed.fix(i, false); }
//! assert_eq!(fam.evaluate(&seed, 0b101), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coins;
pub mod kwise;
pub mod seed;
pub mod slice;

pub use seed::PartialSeed;
pub use slice::SliceFamily;

//! k-wise independent hash families via polynomials over a prime field.
//!
//! This is the classic construction behind the paper's Theorem 2.4
//! (\[Vad12\]): a uniformly random polynomial of degree `k − 1` over `F_p`
//! evaluates k-wise independently and uniformly on `F_p`. Selecting the
//! polynomial consumes `k · ⌈log₂ p⌉` random bits, matching the theorem's
//! `k · max{a, b}` seed length up to the constant from rounding `p` to a
//! prime.
//!
//! Outputs are reduced from `[p]` to `[2^b]` by truncation, which perturbs
//! each output probability by at most `2^b / p`; callers pick `p ≥ 2^{b + g}`
//! to fold the perturbation into the ε-slack of Lemma 2.3 (see
//! [`PolyFamily::with_guard_bits`]).

use crate::seed::PartialSeed;

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs
/// (uses the standard 12-base witness set).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime `≥ n`.
///
/// # Panics
///
/// Panics if no prime `≥ n` fits in `u64` (never happens for `n ≤ 2^63`).
#[must_use]
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate = candidate
            .checked_add(1)
            .expect("prime search overflowed u64");
    }
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Parameters of a k-wise independent family `h: [N] → [2^b]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyFamily {
    prime: u64,
    k: usize,
    out_bits: u32,
}

impl PolyFamily {
    /// Family with independence degree `k`, input domain `[domain]`, output
    /// `[2^out_bits]`, and prime chosen as the smallest prime at least
    /// `max(domain, 2^{out_bits + guard_bits})`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `domain == 0`, or `out_bits + guard_bits ≥ 63`.
    pub fn with_guard_bits(k: usize, domain: u64, out_bits: u32, guard_bits: u32) -> Self {
        assert!(k >= 1, "independence degree must be at least 1");
        assert!(domain >= 1, "domain must be nonempty");
        assert!(
            out_bits + guard_bits < 63,
            "output plus guard bits must fit in u64"
        );
        let floor = 1u64 << (out_bits + guard_bits);
        let prime = next_prime(domain.max(floor));
        PolyFamily { prime, k, out_bits }
    }

    /// Family with the default 20 guard bits (truncation bias ≤ 2⁻²⁰).
    pub fn new(k: usize, domain: u64, out_bits: u32) -> Self {
        Self::with_guard_bits(k, domain, out_bits, 20)
    }

    /// The field prime.
    pub fn prime(&self) -> u64 {
        self.prime
    }

    /// Seed length in bits: `k · ⌈log₂ p⌉`.
    pub fn seed_len(&self) -> usize {
        self.k * (64 - self.prime.leading_zeros()) as usize
    }

    /// Draws a hash function from `seed_value` (expanded via splitmix64 into
    /// the `k` coefficients; a convenience front-end for experiments —
    /// conceptually this consumes [`PolyFamily::seed_len`] random bits).
    pub fn hash_from_u64(&self, seed_value: u64) -> PolyHash {
        let mut state = seed_value;
        let mut coeffs = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            state = splitmix64(state);
            coeffs.push(state % self.prime);
        }
        PolyHash {
            family: *self,
            coeffs,
        }
    }

    /// Draws a hash function from an explicit fully-fixed bit seed of length
    /// [`PolyFamily::seed_len`]; each coefficient reads `⌈log₂ p⌉` bits and
    /// reduces mod p.
    ///
    /// # Panics
    ///
    /// Panics if the seed is incomplete or has the wrong length.
    pub fn hash_from_seed(&self, seed: &PartialSeed) -> PolyHash {
        assert_eq!(seed.len(), self.seed_len(), "seed length mismatch");
        let width = (64 - self.prime.leading_zeros()) as usize;
        let mut coeffs = Vec::with_capacity(self.k);
        for c in 0..self.k {
            let mut v = 0u64;
            for j in 0..width {
                let bit = seed.get(c * width + j).expect("seed must be fully fixed");
                v |= u64::from(bit) << j;
            }
            coeffs.push(v % self.prime);
        }
        PolyHash {
            family: *self,
            coeffs,
        }
    }
}

/// A drawn member of a [`PolyFamily`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    family: PolyFamily,
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Evaluates the polynomial at `x` over `F_p` (full field value).
    pub fn eval_field(&self, x: u64) -> u64 {
        let p = self.family.prime;
        let x = x % p;
        // Horner's rule.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = (mul_mod(acc, x, p) + c) % p;
        }
        acc
    }

    /// Evaluates the hash into `[2^out_bits]` by truncation.
    pub fn eval(&self, x: u64) -> u64 {
        self.eval_field(x) & ((1 << self.family.out_bits) - 1)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_matches_trial_division() {
        fn trial(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for n in 0..2000u64 {
            assert_eq!(is_prime(n), trial(n), "disagreement at {n}");
        }
    }

    #[test]
    fn primality_on_large_known_values() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1
        assert!(!is_prime(2_147_483_649));
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1_000_000_007u64 * 998_244_353));
    }

    #[test]
    fn next_prime_finds_smallest() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(next_prime(90), 97);
    }

    #[test]
    fn pairwise_independence_over_field_exhaustive() {
        // k = 2 over F_5: for x ≠ y the map (c0, c1) → (h(x), h(y)) is a
        // bijection, so the joint distribution over all 25 polynomials is
        // uniform on [5]².
        let family = PolyFamily {
            prime: 5,
            k: 2,
            out_bits: 3,
        };
        for x in 0u64..5 {
            for y in 0u64..5 {
                if x == y {
                    continue;
                }
                let mut histogram = [[0u32; 5]; 5];
                for c0 in 0..5u64 {
                    for c1 in 0..5u64 {
                        let h = PolyHash {
                            family,
                            coeffs: vec![c0, c1],
                        };
                        histogram[h.eval_field(x) as usize][h.eval_field(y) as usize] += 1;
                    }
                }
                for row in &histogram {
                    assert!(row.iter().all(|&c| c == 1));
                }
            }
        }
    }

    #[test]
    fn three_wise_independence_over_field_exhaustive() {
        let family = PolyFamily {
            prime: 3,
            k: 3,
            out_bits: 2,
        };
        let mut histogram = std::collections::HashMap::new();
        for c0 in 0..3u64 {
            for c1 in 0..3u64 {
                for c2 in 0..3u64 {
                    let h = PolyHash {
                        family,
                        coeffs: vec![c0, c1, c2],
                    };
                    let key = (h.eval_field(0), h.eval_field(1), h.eval_field(2));
                    *histogram.entry(key).or_insert(0u32) += 1;
                }
            }
        }
        assert_eq!(histogram.len(), 27);
        assert!(histogram.values().all(|&c| c == 1));
    }

    #[test]
    fn seed_bit_front_end_matches_width() {
        let fam = PolyFamily::with_guard_bits(2, 100, 4, 3);
        // prime ≥ max(100, 128) → 131 → width 8 bits → seed 16 bits.
        assert_eq!(fam.prime(), 131);
        assert_eq!(fam.seed_len(), 16);
        let seed = PartialSeed::from_u64(16, 0xabcd);
        let h = fam.hash_from_seed(&seed);
        assert!(h.eval(42) < 16);
    }

    #[test]
    fn hash_from_u64_is_deterministic() {
        let fam = PolyFamily::new(4, 1000, 8);
        let h1 = fam.hash_from_u64(99);
        let h2 = fam.hash_from_u64(99);
        for x in 0..50 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn truncated_outputs_in_range() {
        let fam = PolyFamily::new(2, 1 << 20, 10);
        let h = fam.hash_from_u64(7);
        for x in 0..2000 {
            assert!(h.eval(x) < 1024);
        }
    }
}

//! Brute-force histogram oracle for the digit-DP kernels.
//!
//! The tier-equivalence suite in `dcl_kernels` proves the four tiers agree
//! with each other; this suite proves they agree with *the ground truth*:
//! for every completion of a partial seed the hash output pair `(z_x, z_y)`
//! is enumerated into an exact joint histogram, and the marginal DP, joint
//! DP and four-outcome coin DP are checked against it for **every**
//! threshold pair — once per kernel tier, asserting the tiers are also
//! bitwise identical to one another along the way. The stateful
//! incremental evaluator is additionally driven through real monotone
//! seed schedules (`SliceFamily` fixes in index order) with the warm
//! cache checked against a fresh enumeration after every candidate
//! evaluation.
//!
//! A hand-crafted `m = 2, b = 2` configuration additionally pins coverage
//! of all five `PairDist` cases (BothKnown / FirstKnown / SecondKnown /
//! Correlated / Independent) so the case analysis can never silently
//! degenerate under refactoring.

use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::{PairDist, SliceFamily};
use dcl_kernels::digit_dp::{incremental, EdgeDpCache};
use dcl_kernels::{clear_active_tier, set_active_tier, KernelTier};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Tier forcing mutates one process-global; serialize around it.
fn lock_tier() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` once per tier and restores per-family dispatch afterwards.
fn per_tier<T>(mut f: impl FnMut() -> T) -> [T; 4] {
    let _guard = lock_tier();
    let out = KernelTier::all().map(|tier| {
        set_active_tier(tier);
        f()
    });
    clear_active_tier();
    out
}

/// Exact joint histogram of `(z_x, z_y)` over all completions of `seed` —
/// built once, then every threshold query is answered from it instead of
/// re-enumerating.
struct Histogram {
    counts: Vec<u64>,
    total: u64,
    outs: usize,
}

impl Histogram {
    fn build(fam: &SliceFamily, seed: &PartialSeed, x: u64, y: u64) -> Self {
        let outs = 1usize << fam.output_bits();
        let mut counts = vec![0u64; outs * outs];
        let mut total = 0u64;
        seed.for_each_completion(|s| {
            let zx = fam.evaluate(s, x) as usize;
            let zy = fam.evaluate(s, y) as usize;
            counts[zx * outs + zy] += 1;
            total += 1;
        });
        Histogram {
            counts,
            total,
            outs,
        }
    }

    fn prob(&self, pred: impl Fn(u64, u64) -> bool) -> f64 {
        let mut hits = 0u64;
        for zx in 0..self.outs {
            for zy in 0..self.outs {
                if pred(zx as u64, zy as u64) {
                    hits += self.counts[zx * self.outs + zy];
                }
            }
        }
        hits as f64 / self.total as f64
    }
}

/// Checks every DP entry point against the histogram for one threshold
/// pair, under every tier, and asserts the tiers are bitwise identical.
fn check_thresholds(
    fam: &SliceFamily,
    seed: &PartialSeed,
    hist: &Histogram,
    x: u64,
    tx: u64,
    y: u64,
    ty: u64,
) -> Result<(), String> {
    let results = per_tier(|| {
        (
            fam.prob_lt(seed, x, tx),
            fam.prob_lt(seed, y, ty),
            fam.prob_joint_lt(seed, x, tx, y, ty),
            fam.joint_coin_probs(seed, x, tx, y, ty),
        )
    });
    let as_bits = |r: &(f64, f64, f64, [f64; 4])| {
        (
            r.0.to_bits(),
            r.1.to_bits(),
            r.2.to_bits(),
            r.3.map(f64::to_bits),
        )
    };
    for (tier, r) in KernelTier::all().iter().zip(&results) {
        if as_bits(r) != as_bits(&results[0]) {
            return Err(format!(
                "tier {} diverged from reference at tx={tx} ty={ty}: {r:?} vs {:?}",
                tier.name(),
                results[0]
            ));
        }
    }
    let (px, py, pxy, coins) = results[0];
    let checks = [
        ("marginal x", px, hist.prob(|zx, _| zx < tx)),
        ("marginal y", py, hist.prob(|_, zy| zy < ty)),
        ("joint", pxy, hist.prob(|zx, zy| zx < tx && zy < ty)),
        (
            "coin 00",
            coins[0],
            hist.prob(|zx, zy| zx >= tx && zy >= ty),
        ),
        ("coin 01", coins[1], hist.prob(|zx, zy| zx >= tx && zy < ty)),
        ("coin 10", coins[2], hist.prob(|zx, zy| zx < tx && zy >= ty)),
        ("coin 11", coins[3], hist.prob(|zx, zy| zx < tx && zy < ty)),
    ];
    for (label, dp, oracle) in checks {
        if (dp - oracle).abs() >= 1e-9 {
            return Err(format!(
                "{label} at tx={tx} ty={ty}: dp={dp} oracle={oracle}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every DP entry point equals exhaustive enumeration for arbitrary
    /// partial seeds, inputs and **all** threshold pairs, under every tier.
    #[test]
    fn dp_matches_histogram_oracle_under_every_tier(
        m in 1u32..=8,
        b in 1u32..=4,
        x_raw in any::<u64>(),
        y_raw in any::<u64>(),
        fix_a in any::<u64>(),
        fix_b in any::<u64>(),
        values in any::<u64>(),
    ) {
        let fam = SliceFamily::new(m, b);
        let mask = (1u64 << m) - 1;
        let (x, y) = (x_raw & mask, y_raw & mask);
        let mut seed = PartialSeed::new(fam.seed_len());
        // Fix each bit with probability 3/4 so enumeration stays small
        // (seed_len is up to 36 here) while leaving real joint structure.
        for i in 0..fam.seed_len() {
            if (fix_a | fix_b) >> (i % 64) & 1 == 1 {
                seed.fix(i, values >> (i % 64) & 1 == 1);
            }
        }
        prop_assume!(seed.free_count() <= 14);

        let hist = Histogram::build(&fam, &seed, x, y);
        let full = 1u64 << b;
        for tx in 0..=full {
            for ty in 0..=full {
                check_thresholds(&fam, &seed, &hist, x, tx, y, ty)
                    .map_err(TestCaseError::Fail)?;
            }
        }
    }

    /// The incremental evaluator against ground truth through a **real**
    /// monotone seed schedule: every seed bit is visited in index order
    /// (exactly the Lemma 2.6 drivers' order), both candidate values are
    /// evaluated through one warm per-edge cache, and each result is
    /// checked against exhaustive enumeration of the correspondingly fixed
    /// seed and bitwise against the stateless dispatched evaluator.
    #[test]
    fn incremental_matches_histogram_across_monotone_schedule(
        m in 1u32..=3,
        b in 1u32..=3,
        x_raw in any::<u64>(),
        y_raw in any::<u64>(),
        values in any::<u64>(),
        ts in any::<u64>(),
    ) {
        let fam = SliceFamily::new(m, b);
        let mask = (1u64 << m) - 1;
        let (x, y) = (x_raw & mask, y_raw & mask);
        let full = 1u64 << b;
        let (tx, ty) = (ts % (full + 1), (ts >> 32) % (full + 1));
        let mut seed = PartialSeed::new(fam.seed_len());
        let mut fx = fam.forms_for(&seed, x);
        let mut fy = fam.forms_for(&seed, y);
        let mut cache = EdgeDpCache::new();
        for index in 0..fam.seed_len() {
            let slice = fam.slice_of_seed_bit(index) as usize;
            for val in [false, true] {
                let ox = fam.form_with_fix(fx[slice], x, index, val);
                let oy = fam.form_with_fix(fy[slice], y, index, val);
                let got = incremental::joint_coin_probs_override(
                    &mut cache, &fx, ox, tx, &fy, oy, ty, slice,
                );
                // Bitwise vs the stateless evaluator (any tier — all are
                // proven bit-identical).
                let want = fam.joint_coin_probs_override(
                    &fx, Some((slice, ox)), tx, &fy, Some((slice, oy)), ty,
                );
                prop_assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "stateless divergence at seed bit {} candidate {}",
                    index,
                    val
                );
                // Ground truth: enumerate the seed with this bit fixed.
                let mut fixed = seed.clone();
                fixed.fix(index, val);
                let hist = Histogram::build(&fam, &fixed, x, y);
                let oracle = [
                    hist.prob(|zx, zy| zx >= tx && zy >= ty),
                    hist.prob(|zx, zy| zx >= tx && zy < ty),
                    hist.prob(|zx, zy| zx < tx && zy >= ty),
                    hist.prob(|zx, zy| zx < tx && zy < ty),
                ];
                for (dp, truth) in got.iter().zip(oracle) {
                    prop_assert!(
                        (dp - truth).abs() < 1e-9,
                        "coin prob off at seed bit {} candidate {}: {} vs {}",
                        index,
                        val,
                        dp,
                        truth
                    );
                }
            }
            // Commit one value and advance the schedule.
            let val = values >> (index % 64) & 1 == 1;
            seed.fix(index, val);
            fam.update_forms_on_fix(&mut fx, x, index, val);
            fam.update_forms_on_fix(&mut fy, y, index, val);
        }
    }
}

/// A fixed `m = 2, b = 2` configuration that provably exercises all five
/// `PairDist` cases at once: slice 0 has its `r₀` and `s` bits fixed (so
/// input 1 is fully known and input 2 is still free), while slice 1 is
/// fully free (equal masks ⇒ Correlated, different masks ⇒ Independent).
#[test]
fn all_five_pair_dist_cases_covered_and_oracle_checked() {
    let fam = SliceFamily::new(2, 2);
    let mut seed = PartialSeed::new(fam.seed_len());
    seed.fix(0, true); // r₀ of slice 0
    seed.fix(2, true); // s of slice 0

    assert!(matches!(
        fam.pair_dist(&seed, 0, 1, 1),
        PairDist::BothKnown(..)
    ));
    assert!(matches!(
        fam.pair_dist(&seed, 0, 1, 2),
        PairDist::FirstKnown(..)
    ));
    assert!(matches!(
        fam.pair_dist(&seed, 0, 2, 1),
        PairDist::SecondKnown(..)
    ));
    assert!(matches!(
        fam.pair_dist(&seed, 1, 1, 1),
        PairDist::Correlated(..)
    ));
    assert!(matches!(
        fam.pair_dist(&seed, 1, 1, 2),
        PairDist::Independent
    ));

    // Input pairs chosen so the two slices jointly walk through every
    // case combination the DP has to aggregate.
    for (x, y) in [(1, 1), (1, 2), (2, 1), (1, 3), (2, 3), (3, 3)] {
        let hist = Histogram::build(&fam, &seed, x, y);
        for tx in 0..=4 {
            for ty in 0..=4 {
                check_thresholds(&fam, &seed, &hist, x, tx, y, ty).unwrap();
            }
        }
    }
}

//! Property-based tests for the pseudorandomness toolkit: the exact DP for
//! conditional probabilities is compared against brute-force enumeration on
//! arbitrary partial seeds, inputs and thresholds.

use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::{coin_threshold, SliceFamily};
use proptest::prelude::*;

fn brute_force(seed: &PartialSeed, mut pred: impl FnMut(&PartialSeed) -> bool) -> f64 {
    let mut hits = 0u64;
    let mut total = 0u64;
    seed.for_each_completion(|s| {
        total += 1;
        if pred(s) {
            hits += 1;
        }
    });
    hits as f64 / total as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The marginal DP equals brute force for arbitrary partial seeds.
    #[test]
    fn marginal_dp_is_exact(
        m in 1u32..4,
        b in 1u32..4,
        x_raw in any::<u64>(),
        t_raw in any::<u64>(),
        fixing in any::<u64>(),
        values in any::<u64>(),
    ) {
        let fam = SliceFamily::new(m, b);
        let x = x_raw & ((1 << m) - 1);
        let t = t_raw % ((1 << b) + 1);
        let mut seed = PartialSeed::new(fam.seed_len());
        for i in 0..fam.seed_len() {
            if fixing >> (i % 64) & 1 == 1 {
                seed.fix(i, values >> (i % 64) & 1 == 1);
            }
        }
        prop_assume!(seed.free_count() <= 16);
        let dp = fam.prob_lt(&seed, x, t);
        let bf = brute_force(&seed, |s| fam.evaluate(s, x) < t);
        prop_assert!((dp - bf).abs() < 1e-9, "dp={dp} bf={bf}");
    }

    /// The joint DP equals brute force for arbitrary input pairs.
    #[test]
    fn joint_dp_is_exact(
        m in 1u32..4,
        b in 1u32..3,
        x_raw in any::<u64>(),
        y_raw in any::<u64>(),
        tx_raw in any::<u64>(),
        ty_raw in any::<u64>(),
        fixing in any::<u64>(),
        values in any::<u64>(),
    ) {
        let fam = SliceFamily::new(m, b);
        let mask = (1u64 << m) - 1;
        let (x, y) = (x_raw & mask, y_raw & mask);
        let full = 1u64 << b;
        let (tx, ty) = (tx_raw % (full + 1), ty_raw % (full + 1));
        let mut seed = PartialSeed::new(fam.seed_len());
        for i in 0..fam.seed_len() {
            if fixing >> (i % 64) & 1 == 1 {
                seed.fix(i, values >> (i % 64) & 1 == 1);
            }
        }
        prop_assume!(seed.free_count() <= 14);
        let dp = fam.prob_joint_lt(&seed, x, tx, y, ty);
        let bf = brute_force(&seed, |s| fam.evaluate(s, x) < tx && fam.evaluate(s, y) < ty);
        prop_assert!((dp - bf).abs() < 1e-9, "dp={dp} bf={bf}");
    }

    /// Joint coin probabilities form a distribution and marginalize
    /// correctly.
    #[test]
    fn joint_coin_probs_are_consistent(
        m in 1u32..5,
        b in 1u32..5,
        x_raw in any::<u64>(),
        y_raw in any::<u64>(),
        tx_raw in any::<u64>(),
        ty_raw in any::<u64>(),
    ) {
        let fam = SliceFamily::new(m, b);
        let mask = (1u64 << m) - 1;
        let (x, y) = (x_raw & mask, y_raw & mask);
        let full = 1u64 << b;
        let (tx, ty) = (tx_raw % (full + 1), ty_raw % (full + 1));
        let seed = PartialSeed::new(fam.seed_len());
        let q = fam.joint_coin_probs(&seed, x, tx, y, ty);
        let sum: f64 = q.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let px = fam.prob_lt(&seed, x, tx);
        prop_assert!(((q[2] + q[3]) - px).abs() < 1e-9, "marginal x");
        let py = fam.prob_lt(&seed, y, ty);
        prop_assert!(((q[1] + q[3]) - py).abs() < 1e-9, "marginal y");
    }

    /// Incremental form updates always match recomputation from scratch.
    #[test]
    fn incremental_updates_match(
        m in 1u32..6,
        b in 1u32..5,
        x_raw in any::<u64>(),
        order_seed in any::<u64>(),
    ) {
        let fam = SliceFamily::new(m, b);
        let x = x_raw & ((1 << m) - 1);
        let mut seed = PartialSeed::new(fam.seed_len());
        let mut forms = fam.forms_for(&seed, x);
        let len = fam.seed_len();
        // A pseudo-random fixing order derived from order_seed.
        let mut order: Vec<usize> = (0..len).collect();
        let mut state = order_seed;
        for i in (1..len).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for (step, &idx) in order.iter().enumerate() {
            let value = (order_seed >> (step % 64)) & 1 == 1;
            seed.fix(idx, value);
            fam.update_forms_on_fix(&mut forms, x, idx, value);
            prop_assert_eq!(&forms, &fam.forms_for(&seed, x));
        }
    }

    /// Thresholds realize probabilities within 2^-b, exactly at 0 and 1.
    #[test]
    fn coin_threshold_accuracy(num in 0u64..100, den in 1u64..100, b in 1u32..16) {
        prop_assume!(num <= den);
        let t = coin_threshold(num, den, b);
        let p = num as f64 / den as f64;
        let realized = t as f64 / (1u64 << b) as f64;
        prop_assert!(realized >= p - 1e-12);
        prop_assert!(realized <= p + 1.0 / (1u64 << b) as f64 + 1e-12);
        if num == 0 {
            prop_assert_eq!(t, 0);
        }
        if num == den {
            prop_assert_eq!(t, 1 << b);
        }
    }
}

//! Brooks-obstruction detection: the inputs a Δ-coloring must refuse.
//!
//! Brooks' theorem: a graph with maximum degree Δ admits a proper Δ-coloring
//! unless some connected component is the complete graph `K_{Δ+1}`, or
//! `Δ = 2` and some component is an odd cycle. Both conditions are detected
//! *distributedly* (real metered rounds on the shared runtime) and reported
//! as the typed [`DeltaError`] — model violations panic, impossible inputs
//! do not.
//!
//! The `K_{Δ+1}` check is local: a component equals `K_{Δ+1}` iff some node
//! `v` has `deg(v) = Δ`, every neighbor has degree Δ, and `N(v)` is pairwise
//! adjacent (then `{v} ∪ N(v)` is a Δ-regular clique with no edges leaving
//! it). Two rounds suffice — degrees, then adjacency lists (which fragment
//! honestly under swept caps). The odd-cycle check for `Δ = 2` 2-colors by
//! BFS-depth parity and verifies in one round: a monochromatic edge exists
//! iff a component is non-bipartite, which for Δ = 2 means an odd cycle.

use dcl_congest::bfs::build_bfs_forest;
use dcl_congest::network::Network;
use dcl_graphs::NodeId;
use std::fmt;

/// A Brooks obstruction: the input admits no Δ-coloring, by theorem rather
/// than by algorithmic failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A connected component is the complete graph on `Δ + 1` nodes (for
    /// `Δ = 0` an isolated vertex, for `Δ = 1` a lone edge).
    CliqueObstruction {
        /// Smallest node of a witnessing clique.
        witness: NodeId,
        /// Clique size `Δ + 1`.
        size: usize,
    },
    /// `Δ = 2` and a connected component is an odd cycle.
    OddCycle {
        /// Smallest node on a witnessing odd cycle.
        witness: NodeId,
        /// Length of that cycle.
        length: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::CliqueObstruction { witness, size } => write!(
                f,
                "component of node {witness} is the complete graph K_{size}: \
                 no Δ-coloring exists (Brooks)"
            ),
            DeltaError::OddCycle { witness, length } => write!(
                f,
                "component of node {witness} is an odd cycle of length {length}: \
                 no 2-coloring exists (Brooks, Δ = 2)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Distributed `K_{Δ+1}` detection in two metered rounds.
///
/// Round 1: every node announces its degree. Round 2: every node whose
/// closed neighborhood could still be Δ-regular (own and all neighbor
/// degrees equal Δ) announces its sorted adjacency list — `O(Δ log n)` bits,
/// fragmented under small caps. A node then flags itself iff its neighbors
/// all announced and are pairwise adjacent. The abort-on-flag decision is
/// central harness control flow, like the termination checks of the
/// Theorem 1.1 driver loop.
///
/// # Errors
///
/// Returns [`DeltaError::CliqueObstruction`] (smallest flagged node as the
/// witness) when a component is `K_{Δ+1}`.
pub fn detect_clique_obstruction(net: &mut Network<'_>) -> Result<(), DeltaError> {
    let g = net.graph();
    let n = g.n();
    let delta = g.max_degree();

    // Round 1: degrees.
    let deg_inboxes = net.fragmented_broadcast_round(|v| Some(g.degree(v) as u64));
    let candidate: Vec<bool> = (0..n)
        .map(|v| g.degree(v) == delta && deg_inboxes[v].iter().all(|&(_, d)| d == delta as u64))
        .collect();

    // Round 2: candidates ship their adjacency lists.
    let adj_inboxes = net.fragmented_broadcast_round(|v| {
        if candidate[v] {
            Some(
                g.neighbors(v)
                    .iter()
                    .map(|&u| u as u64)
                    .collect::<Vec<u64>>(),
            )
        } else {
            None
        }
    });

    for v in 0..n {
        if !candidate[v] {
            continue;
        }
        // All neighbors must themselves be candidates (they announced), and
        // every pair of neighbors must be adjacent.
        let nbrs = g.neighbors(v);
        if adj_inboxes[v].len() != nbrs.len() {
            continue;
        }
        let clique = nbrs.iter().enumerate().all(|(i, &u)| {
            // Inboxes arrive in sender order = sorted neighbor order.
            let (sender, list) = &adj_inboxes[v][i];
            debug_assert_eq!(*sender, u);
            nbrs.iter()
                .filter(|&&w| w != u)
                .all(|&w| list.binary_search(&(w as u64)).is_ok())
        });
        if clique {
            return Err(DeltaError::CliqueObstruction {
                witness: v.min(*nbrs.first().unwrap_or(&v)),
                size: delta + 1,
            });
        }
    }
    Ok(())
}

/// 2-colors a `Δ = 2` graph (paths, even cycles, isolated nodes) or reports
/// the odd cycle that makes it impossible.
///
/// Builds the BFS forest (real rounds), colors by depth parity, and spends
/// one verification round in which every node announces its parity color; a
/// monochromatic edge identifies a non-bipartite — for Δ = 2, odd-cycle —
/// component.
///
/// # Errors
///
/// Returns [`DeltaError::OddCycle`] with the smallest node of the offending
/// component and the cycle length (= component size).
pub fn two_color_bipartite(net: &mut Network<'_>) -> Result<Vec<u64>, DeltaError> {
    let g = net.graph();
    let n = g.n();
    let forest = build_bfs_forest(net);
    let colors: Vec<u64> = (0..n)
        .map(|v| u64::from(forest.tree_of(v).depth[v] % 2))
        .collect();
    // Verification round: everyone announces its parity color.
    let inboxes = net.fragmented_broadcast_round(|v| Some(colors[v]));
    for v in 0..n {
        if inboxes[v].iter().any(|&(_, c)| c == colors[v]) {
            let comp = forest.component[v];
            let members: Vec<NodeId> = (0..n).filter(|&u| forest.component[u] == comp).collect();
            return Err(DeltaError::OddCycle {
                witness: members[0],
                length: members.len(),
            });
        }
    }
    Ok(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, Graph};

    fn net_for(g: &Graph) -> Network<'_> {
        Network::with_default_cap(g, (g.max_degree() as u64 + 1).max(2))
    }

    #[test]
    fn complete_graphs_are_flagged_with_their_size() {
        for k in [1usize, 2, 3, 4, 6] {
            let g = generators::complete(k);
            let mut net = net_for(&g);
            assert_eq!(
                detect_clique_obstruction(&mut net),
                Err(DeltaError::CliqueObstruction {
                    witness: 0,
                    size: k
                }),
                "K_{k}"
            );
        }
    }

    #[test]
    fn clique_component_inside_a_larger_graph_is_flagged() {
        // K_4 component next to a path: Δ = 3, the K_4 is K_{Δ+1}.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (5, 6),
            ],
        )
        .unwrap();
        let mut net = net_for(&g);
        assert_eq!(
            detect_clique_obstruction(&mut net),
            Err(DeltaError::CliqueObstruction {
                witness: 0,
                size: 4
            })
        );
    }

    #[test]
    fn near_cliques_pass() {
        // K_5 minus one edge: Δ = 4, no K_5 component.
        let mut edges = Vec::new();
        for u in 0..5usize {
            for v in (u + 1)..5 {
                if (u, v) != (3, 4) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        let mut net = net_for(&g);
        assert_eq!(detect_clique_obstruction(&mut net), Ok(()));
        // A K_4 inside a Δ = 4 graph is not K_{Δ+1} either.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)])
            .unwrap();
        let mut net = net_for(&g);
        assert_eq!(detect_clique_obstruction(&mut net), Ok(()));
    }

    #[test]
    fn detection_costs_two_rounds() {
        let g = generators::random_regular(30, 4, 3);
        let mut net = net_for(&g);
        assert_eq!(detect_clique_obstruction(&mut net), Ok(()));
        assert_eq!(net.metrics().rounds, 2);
    }

    #[test]
    fn two_coloring_handles_paths_and_even_cycles() {
        for g in [generators::path(9), generators::ring(12)] {
            let mut net = net_for(&g);
            let colors = two_color_bipartite(&mut net).unwrap();
            assert!(dcl_graphs::validation::check_proper(&g, &colors).is_none());
            assert!(colors.iter().all(|&c| c < 2));
        }
    }

    #[test]
    fn odd_cycles_are_rejected_with_length() {
        let g = generators::ring(13);
        let mut net = net_for(&g);
        assert_eq!(
            two_color_bipartite(&mut net),
            Err(DeltaError::OddCycle {
                witness: 0,
                length: 13
            })
        );
    }

    #[test]
    fn error_messages_name_the_obstruction() {
        let e = DeltaError::CliqueObstruction {
            witness: 3,
            size: 5,
        };
        assert!(e.to_string().contains("K_5"));
        let e = DeltaError::OddCycle {
            witness: 0,
            length: 7,
        };
        assert!(e.to_string().contains("length 7"));
    }
}

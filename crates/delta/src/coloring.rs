//! The Δ-coloring driver: obstruction detection → Theorem 1.1 partial
//! coloring → Kempe-chain overflow elimination, all on one metered
//! [`Network`].

use crate::kempe::{brooks_color_component, flip_chain, probe_chain};
use crate::obstruction::{detect_clique_obstruction, two_color_bipartite, DeltaError};
use dcl_coloring::congest_coloring::{color_list_instance_on, CongestColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_coloring::partial::PartialConfig;
use dcl_congest::network::{Metrics, Network};
use dcl_graphs::{metrics, Graph, NodeId};
use dcl_sim::{bit_len, ExecConfig};

/// Configuration of the Δ-coloring pipeline.
///
/// `#[non_exhaustive]`: build it with [`Default`] plus the `with_*` setters
/// so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct DeltaColoringConfig {
    /// Strategy and accuracy of the Theorem 1.1 partial-coloring phase.
    pub partial: PartialConfig,
    /// Iteration cap forwarded to the Theorem 1.1 phase (`None` = its
    /// default `6·⌈log₂ n⌉ + 10` safety net).
    pub max_iterations: Option<usize>,
    /// Simulator execution: round backend (results are bit-identical across
    /// backends) and bandwidth cap (`None` = the model default; swept caps
    /// fragment wide payloads — the axis of `dcl_bench::e13_delta_coloring`).
    pub exec: ExecConfig,
}

impl DeltaColoringConfig {
    /// Sets the Theorem 1.1 partial-coloring strategy (builder style).
    #[must_use]
    pub fn with_partial(mut self, partial: PartialConfig) -> Self {
        self.partial = partial;
        self
    }

    /// Sets the Theorem 1.1 iteration cap (builder style).
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: Option<usize>) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the simulator execution knob (builder style).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }
}

/// Result of a successful Δ-coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaColoringResult {
    /// The proper coloring with colors `< palette`.
    pub colors: Vec<u64>,
    /// Number of colors available: `Δ` (2 on the `Δ = 2` bipartite path).
    pub palette: u64,
    /// Cumulative simulator cost of the whole pipeline (detection, partial
    /// coloring, recoloring).
    pub metrics: Metrics,
    /// Lemma 2.1 iterations of the Theorem 1.1 phase.
    pub phase1_iterations: usize,
    /// Nodes holding the overflow color Δ after the Theorem 1.1 phase.
    pub overflow_nodes: usize,
    /// Overflow nodes fixed by a free color in their neighborhood.
    pub greedy_recolored: usize,
    /// Kempe-chain probes performed (successful or not).
    pub kempe_probes: usize,
    /// Kempe chains flipped.
    pub kempe_flips: usize,
    /// Components finished by the collect-at-leader Lovász–Brooks solver.
    pub collect_fallbacks: usize,
}

/// Colors `graph` with exactly `Δ = max_degree` colors (Brooks' bound),
/// deterministically, under the CONGEST bandwidth cap of `config.exec`.
///
/// # Errors
///
/// Returns the typed [`DeltaError`] when the input is a Brooks obstruction:
/// a `K_{Δ+1}` component (which for `Δ ∈ {0, 1}` means any non-empty input)
/// or, for `Δ = 2`, an odd-cycle component.
///
/// # Panics
///
/// Panics only on internal progress bugs (the Theorem 1.1 iteration cap) —
/// never on obstruction inputs.
pub fn delta_color(
    graph: &Graph,
    config: &DeltaColoringConfig,
) -> Result<DeltaColoringResult, DeltaError> {
    let n = graph.n();
    let delta = graph.max_degree();
    let mut net = Network::from_exec(graph, delta as u64 + 2, &config.exec);
    if n == 0 {
        return Ok(DeltaColoringResult {
            colors: Vec::new(),
            palette: 0,
            metrics: net.metrics(),
            phase1_iterations: 0,
            overflow_nodes: 0,
            greedy_recolored: 0,
            kempe_probes: 0,
            kempe_flips: 0,
            collect_fallbacks: 0,
        });
    }

    // Phase 0: Brooks obstructions. Δ ∈ {0, 1} always contain K_{Δ+1}
    // components (isolated vertices / lone edges), so only Δ = 2 needs the
    // separate bipartite path below.
    detect_clique_obstruction(&mut net)?;
    if delta == 2 {
        let colors = two_color_bipartite(&mut net)?;
        return Ok(DeltaColoringResult {
            colors,
            palette: 2,
            metrics: net.metrics(),
            phase1_iterations: 0,
            overflow_nodes: 0,
            greedy_recolored: 0,
            kempe_probes: 0,
            kempe_flips: 0,
            collect_fallbacks: 0,
        });
    }
    debug_assert!(delta >= 3, "smaller degrees ended in phase 0");

    // Phase 1: the paper's (degree+1)-list coloring with lists {0..deg(v)}.
    // Only full-degree nodes can receive the overflow color Δ, and —
    // properness — they form an independent set.
    let instance = ListInstance::degree_plus_one(graph.clone());
    let phase1 = color_list_instance_on(
        &mut net,
        &instance,
        &CongestColoringConfig::default()
            .with_partial(config.partial)
            .with_max_iterations(config.max_iterations)
            .with_exec(config.exec),
    );
    let mut colors = phase1.colors;
    let delta_color_value = delta as u64;

    // Phase 2: eliminate the overflow color. Every node already knows its
    // neighbors' colors (each was announced on the wire when assigned during
    // phase 1); the per-node fixes below are charged as the floods an actual
    // deployment would run, one overflow node at a time.
    let overflow: Vec<NodeId> = (0..n).filter(|&v| colors[v] == delta_color_value).collect();
    let color_bits = bit_len(delta_color_value);
    let mut greedy_recolored = 0;
    let mut kempe_probes = 0;
    let mut kempe_flips = 0;
    let mut collect_fallbacks = 0;
    let mut visited = vec![false; n];

    for &v in &overflow {
        if colors[v] != delta_color_value {
            continue; // already fixed by a component fallback
        }
        // Free color in the neighborhood?
        let mut used = vec![false; delta];
        for &u in graph.neighbors(v) {
            if colors[u] < delta_color_value {
                used[colors[u] as usize] = true;
            }
        }
        if let Some(free) = (0..delta).find(|&c| !used[c]) {
            colors[v] = free as u64;
            greedy_recolored += 1;
            charge_announce(&mut net, graph.degree(v) as u64, color_bits);
            continue;
        }
        // deg(v) = Δ and each color 0..Δ−1 appears on exactly one neighbor.
        let mut owner = vec![usize::MAX; delta];
        for &u in graph.neighbors(v) {
            owner[colors[u] as usize] = u;
        }
        let mut fixed = false;
        'pairs: for a in 0..delta as u64 {
            for b in (a + 1)..delta as u64 {
                let chain = probe_chain(
                    graph,
                    &colors,
                    a,
                    b,
                    owner[a as usize],
                    owner[b as usize],
                    &mut visited,
                );
                kempe_probes += 1;
                // The probe flood runs along the chain whether it succeeds
                // or not: depth+1 rounds of one small token per chain edge
                // (two directions), then the verdict travels back to v.
                let f = net.charge_payload_traffic(2 * chain.edges.max(1), color_bits + 1);
                net.charge_rounds(u64::from(chain.depth + 1) * u64::from(f));
                if !chain.reached_target {
                    // Flip frees color `a` at v: one round in which the
                    // chain announces its swapped colors, plus v's own
                    // announcement.
                    let total_deg: u64 = chain.nodes.iter().map(|&w| graph.degree(w) as u64).sum();
                    flip_chain(&mut colors, a, b, &chain);
                    colors[v] = a;
                    kempe_flips += 1;
                    charge_announce(&mut net, total_deg + graph.degree(v) as u64, color_bits);
                    fixed = true;
                    break 'pairs;
                }
            }
        }
        if fixed {
            continue;
        }
        // Every pair of chains connects: hand the component to its leader
        // (converge-cast the edges, solve with Lovász–Brooks, broadcast the
        // colors back), exactly like the clique driver's collect finish.
        let comp = component_of(graph, v);
        charge_component_collect(&mut net, graph, &comp, color_bits);
        for (w, c) in brooks_color_component(graph, &comp, delta)? {
            colors[w] = c;
        }
        collect_fallbacks += 1;
    }

    debug_assert!(colors.iter().all(|&c| c < delta_color_value));
    Ok(DeltaColoringResult {
        colors,
        palette: delta_color_value,
        metrics: net.metrics(),
        phase1_iterations: phase1.iterations,
        overflow_nodes: overflow.len(),
        greedy_recolored,
        kempe_probes,
        kempe_flips,
        collect_fallbacks,
    })
}

/// Charges one announcement round: `messages` color payloads, the round
/// stretched by fragmentation under swept caps.
fn charge_announce(net: &mut Network<'_>, messages: u64, color_bits: u32) {
    let f = net.charge_payload_traffic(messages, color_bits);
    net.charge_rounds(u64::from(f));
}

/// The connected component containing `v`, in ascending node order.
fn component_of(graph: &Graph, v: NodeId) -> Vec<NodeId> {
    let dist = metrics::bfs(graph, v);
    (0..graph.n()).filter(|&u| dist[u] != u32::MAX).collect()
}

/// Charges the collect-at-leader fallback for one component: a pipelined
/// converge-cast of the component's edge list to the leader (each edge
/// record travels the BFS depth of its shallower endpoint; `h + W` rounds
/// for `W` total fragments at the root, like the charged tree collectives of
/// `dcl_congest::tree`), then a broadcast of one color per node back down.
fn charge_component_collect(
    net: &mut Network<'_>,
    graph: &Graph,
    comp: &[NodeId],
    color_bits: u32,
) {
    let n = graph.n();
    let root = comp[0];
    let depth = metrics::bfs(graph, root);
    let height = comp.iter().map(|&w| depth[w]).max().unwrap_or(0);
    let edge_bits = 2 * bit_len(n as u64);
    let mut up_hops = 0u64;
    let mut records = 0u64;
    for &w in comp {
        for &u in graph.neighbors(w) {
            if w < u {
                records += 1;
                up_hops += u64::from(depth[w].min(depth[u]));
            }
        }
    }
    // Upward edge records (hop-by-hop messages) and downward colors.
    let f_up = net.charge_payload_traffic(up_hops.max(records), edge_bits);
    net.charge_rounds(u64::from(height) + (records * u64::from(f_up)).saturating_sub(1) + 1);
    let down_hops: u64 = comp.iter().map(|&w| u64::from(depth[w])).sum();
    let f_down = net.charge_payload_traffic(down_hops.max(comp.len() as u64), color_bits);
    net.charge_rounds(
        u64::from(height) + (comp.len() as u64 * u64::from(f_down)).saturating_sub(1) + 1,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, validation, Graph};

    fn assert_delta_colored(g: &Graph, result: &DeltaColoringResult) {
        assert_eq!(validation::check_proper(g, &result.colors), None);
        let delta = g.max_degree() as u64;
        assert!(
            result.colors.iter().all(|&c| c < delta.max(result.palette)),
            "a color reached the palette bound"
        );
        assert_eq!(result.palette, delta.max(if g.n() == 0 { 0 } else { 2 }));
    }

    #[test]
    fn colors_generator_graphs_with_delta_colors() {
        for (name, g) in [
            ("gnp", generators::gnp(60, 0.12, 3)),
            ("power_law", generators::power_law(80, 2.5, 5.0, 11)),
            ("expander", generators::expander(64, 4, 2)),
            ("regular", generators::random_regular(48, 5, 7)),
            ("grid", generators::grid(6, 8)),
            ("hypercube", generators::hypercube(4)),
        ] {
            assert!(g.max_degree() >= 3, "{name}: generator produced Δ < 3");
            let result = delta_color(&g, &DeltaColoringConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_delta_colored(&g, &result);
        }
    }

    #[test]
    fn overflow_bookkeeping_is_consistent() {
        let g = generators::random_regular(64, 6, 1);
        let r = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        if r.collect_fallbacks == 0 {
            assert_eq!(
                r.overflow_nodes,
                r.greedy_recolored + r.kempe_flips,
                "without fallbacks, every overflow node is fixed greedily or by a flip"
            );
        }
        assert!(r.kempe_probes >= r.kempe_flips);
    }

    #[test]
    fn kempe_flips_fire_on_expanders() {
        // Pinned seed on which greedy recoloring alone is not enough, so the
        // chain-flip path stays exercised end to end.
        let g = generators::expander(64, 4, 1);
        let r = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        assert!(r.kempe_flips > 0, "expected at least one Kempe flip");
        assert_delta_colored(&g, &r);
    }

    #[test]
    fn rejects_cliques_and_odd_cycles_with_typed_errors() {
        for k in [1usize, 2, 4, 5] {
            let g = generators::complete(k);
            assert_eq!(
                delta_color(&g, &DeltaColoringConfig::default()),
                Err(DeltaError::CliqueObstruction {
                    witness: 0,
                    size: k
                }),
                "K_{k}"
            );
        }
        let g = generators::ring(9);
        assert_eq!(
            delta_color(&g, &DeltaColoringConfig::default()),
            Err(DeltaError::OddCycle {
                witness: 0,
                length: 9
            })
        );
    }

    #[test]
    fn two_colors_bipartite_delta_two_graphs() {
        for g in [generators::ring(10), generators::path(7)] {
            let r = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
            assert_eq!(r.palette, 2);
            assert_eq!(validation::check_proper(&g, &r.colors), None);
        }
    }

    #[test]
    fn swept_caps_cost_more_rounds_and_same_colors() {
        let g = generators::random_regular(48, 5, 9);
        let log_n = bit_len(g.n() as u64 - 1);
        let default_run = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        let tight = delta_color(
            &g,
            &DeltaColoringConfig {
                exec: ExecConfig::default().with_cap(dcl_sim::BandwidthCap::new(log_n)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            default_run.colors, tight.colors,
            "cap must not change the result"
        );
        assert!(
            tight.metrics.rounds > default_run.metrics.rounds,
            "fragmentation at cap {log_n} must stretch rounds ({} vs {})",
            tight.metrics.rounds,
            default_run.metrics.rounds
        );
        assert_eq!(validation::check_proper(&g, &tight.colors), None);
    }

    #[test]
    fn deterministic_end_to_end() {
        let g = generators::gnp(50, 0.15, 21);
        let a = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        let b = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn empty_graph_is_trivial() {
        let r = delta_color(&Graph::empty(0), &DeltaColoringConfig::default()).unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.palette, 0);
    }

    #[test]
    fn edgeless_graphs_are_brooks_obstructions() {
        // Δ = 0: every isolated vertex is K_1 = K_{Δ+1}.
        assert_eq!(
            delta_color(&Graph::empty(3), &DeltaColoringConfig::default()),
            Err(DeltaError::CliqueObstruction {
                witness: 0,
                size: 1
            })
        );
    }

    #[test]
    fn disconnected_graphs_color_every_component() {
        // A K_4 component is fine when the graph's Δ is 4 (K_5 would be the
        // obstruction).
        let g = Graph::from_edges(
            10,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (4, 6),
                (4, 7),
                (4, 8),
                (5, 6),
                (7, 8),
                (8, 9),
            ],
        )
        .unwrap();
        assert_eq!(g.max_degree(), 4);
        let r = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        assert_delta_colored(&g, &r);
    }
}

//! The Δ-coloring pipeline as a [`dcl_runner::Scenario`].
//!
//! Thin adapter over [`delta_color`] (which stays public). Brooks
//! obstructions come back as [`dcl_runner::RunError::Rejected`] with the
//! original [`DeltaError`](crate::DeltaError) preserved —
//! `err.rejection::<DeltaError>()` recovers it losslessly.
//!
//! The full `ExecConfig` is honored, transport tier included: the same
//! cell re-run on `TransportSpec::Channel` or `TransportSpec::Tcp` ships
//! its rounds through real byte streams and still produces a bit-identical
//! outcome — typed rejections included (pinned by
//! `tests/transport_oracle.rs` at the workspace root).

use crate::coloring::{delta_color, DeltaColoringConfig};

use dcl_graphs::Graph;
use dcl_runner::{Model, Report, RunError, Scenario};
use dcl_sim::ExecConfig;

/// The Brooks-bound Δ-coloring of Halldórsson–Maus 2024 as a runnable
/// scenario (name `"delta"`). Unlike the `(Δ+1)` scenarios this one is
/// fallible: `K_{Δ+1}` components and odd cycles are rejected by theorem.
///
/// # Examples
///
/// ```
/// use dcl_delta::{scenario::DeltaScenario, DeltaError};
/// use dcl_graphs::generators;
/// use dcl_runner::Scenario;
/// use dcl_sim::ExecConfig;
///
/// let g = generators::random_regular(48, 5, 7);
/// let report = DeltaScenario::default().run(&g, &ExecConfig::default()).unwrap();
/// assert!(report.valid());
/// assert_eq!(report.palette, 5, "Δ colors, not Δ+1");
///
/// let k4 = generators::complete(4);
/// let err = DeltaScenario::default().run(&k4, &ExecConfig::default()).unwrap_err();
/// assert!(matches!(
///     err.rejection::<DeltaError>(),
///     Some(DeltaError::CliqueObstruction { size: 4, .. })
/// ));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaScenario {
    /// Driver knobs; the runner's `ExecConfig` replaces `config.exec` per
    /// cell.
    pub config: DeltaColoringConfig,
}

impl DeltaScenario {
    /// A scenario with explicit driver knobs.
    pub fn with_config(config: DeltaColoringConfig) -> Self {
        DeltaScenario { config }
    }
}

impl Scenario for DeltaScenario {
    fn name(&self) -> &str {
        "delta"
    }

    fn model(&self) -> Model {
        Model::Congest
    }

    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
        match delta_color(graph, &self.config.with_exec(*exec)) {
            Ok(result) => Ok(Report::build(
                self.name(),
                self.model(),
                graph,
                result.palette,
                result.colors,
                result.metrics,
            )
            .with_extra("phase1_iterations", result.phase1_iterations as u64)
            .with_extra("overflow_nodes", result.overflow_nodes as u64)
            .with_extra("greedy_recolored", result.greedy_recolored as u64)
            .with_extra("kempe_probes", result.kempe_probes as u64)
            .with_extra("kempe_flips", result.kempe_flips as u64)
            .with_extra("collect_fallbacks", result.collect_fallbacks as u64)),
            Err(obstruction) => Err(RunError::rejected(self.name(), obstruction)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaError;
    use dcl_graphs::generators;

    #[test]
    fn scenario_matches_the_direct_entry_point() {
        let g = generators::random_regular(40, 5, 3);
        let report = DeltaScenario::default()
            .run(&g, &ExecConfig::default())
            .unwrap();
        let direct = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
        assert_eq!(report.colors, direct.colors);
        assert_eq!(report.metrics, direct.metrics);
        assert_eq!(report.palette, direct.palette);
        assert_eq!(
            report.extra("overflow_nodes"),
            Some(direct.overflow_nodes as u64)
        );
        assert_eq!(report.extra("kempe_flips"), Some(direct.kempe_flips as u64));
        assert!(report.valid());
    }

    #[test]
    fn obstructions_reject_losslessly() {
        let k5 = generators::complete(5);
        let err = DeltaScenario::default()
            .run(&k5, &ExecConfig::default())
            .unwrap_err();
        match err.rejection::<DeltaError>() {
            Some(DeltaError::CliqueObstruction { size, .. }) => assert_eq!(*size, 5),
            other => panic!("expected a clique obstruction, got {other:?}"),
        }
        assert!(err.to_string().contains("rejected"), "{err}");

        let odd = generators::ring(9);
        let err = DeltaScenario::default()
            .run(&odd, &ExecConfig::default())
            .unwrap_err();
        assert!(matches!(
            err.rejection::<DeltaError>(),
            Some(DeltaError::OddCycle { length: 9, .. })
        ));
    }

    #[test]
    fn scenario_metadata_is_stable() {
        let s = DeltaScenario::default();
        assert_eq!(s.name(), "delta");
        assert_eq!(s.model(), Model::Congest);
    }
}

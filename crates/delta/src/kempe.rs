//! Kempe-chain machinery and the Lovász–Brooks component solver.
//!
//! The recoloring phase of [`crate::coloring::delta_color`] eliminates the
//! overflow color Δ by flipping *Kempe chains*: for colors `a ≠ b`, the
//! connected component of a node in the subgraph induced by the two color
//! classes. Swapping `a ↔ b` on an entire chain preserves properness, and
//! when the chain starting at `v`'s `a`-colored neighbor does not reach its
//! `b`-colored neighbor, the swap frees color `a` at `v`.
//!
//! When every chain probe fails (all `Θ(Δ²)` pairs connect), the component
//! is solved locally at its leader with the constructive proof of Brooks'
//! theorem (Lovász 1975): a sub-Δ-degree root orders the component by
//! reverse BFS for a greedy pass; Δ-regular components either split at an
//! articulation point or contain a vertex `a` with two non-adjacent
//! neighbors `b, c` whose removal keeps the component connected — coloring
//! `b` and `c` alike leaves a free color at `a`.

use crate::obstruction::DeltaError;
use dcl_graphs::{Graph, NodeId};

/// Outcome of one Kempe-chain probe: the chain's nodes (BFS discovery
/// order), its BFS depth from the start node, its internal edge count, and
/// whether it reached the probe target.
#[derive(Debug)]
pub struct ChainProbe {
    /// Chain nodes in BFS discovery order (deterministic: sorted adjacency).
    pub nodes: Vec<NodeId>,
    /// Maximum BFS depth from the start node — the rounds a distributed
    /// flood along the chain needs.
    pub depth: u32,
    /// Number of edges inside the chain (each flood token crosses one).
    pub edges: u64,
    /// Whether `target` lies on the chain (flip would not free the color).
    pub reached_target: bool,
}

/// Explores the `{a, b}`-Kempe chain containing `start` by BFS over the
/// bichromatic subgraph. `visited` is caller-provided scratch of length `n`,
/// false on entry; it is cleaned up (only the touched entries) before
/// returning, so repeated probes are `O(chain)` each.
pub fn probe_chain(
    g: &Graph,
    colors: &[u64],
    a: u64,
    b: u64,
    start: NodeId,
    target: NodeId,
    visited: &mut [bool],
) -> ChainProbe {
    debug_assert!(colors[start] == a || colors[start] == b);
    let mut nodes = vec![start];
    let mut depth_of = vec![0u32];
    visited[start] = true;
    let mut head = 0;
    let mut depth = 0;
    let mut edge_endpoints = 0u64;
    while head < nodes.len() {
        let w = nodes[head];
        let d = depth_of[head];
        head += 1;
        for &u in g.neighbors(w) {
            if colors[u] == a || colors[u] == b {
                edge_endpoints += 1;
                if !visited[u] {
                    visited[u] = true;
                    nodes.push(u);
                    depth_of.push(d + 1);
                    depth = depth.max(d + 1);
                }
            }
        }
    }
    let reached_target = visited[target];
    for &w in &nodes {
        visited[w] = false;
    }
    ChainProbe {
        nodes,
        depth,
        edges: edge_endpoints / 2,
        reached_target,
    }
}

/// Swaps colors `a ↔ b` on every chain node. The chain is a maximal
/// bichromatic component, so the swap keeps the global coloring proper.
pub fn flip_chain(colors: &mut [u64], a: u64, b: u64, chain: &ChainProbe) {
    for &w in &chain.nodes {
        colors[w] = a + b - colors[w];
    }
}

/// Colors one connected component with exactly `delta ≥ 3` colors using the
/// constructive Lovász proof of Brooks' theorem; `comp` must list the whole
/// component. Returns `(node, color)` assignments with colors `< delta`.
///
/// # Errors
///
/// Returns the typed obstruction if the component is `K_{delta+1}` (or, for
/// the defensive `delta = 2` case, an odd cycle).
///
/// # Panics
///
/// Panics if `comp` is not a full connected component of `g` (internal
/// invariant of the fallback path).
pub fn brooks_color_component(
    g: &Graph,
    comp: &[NodeId],
    delta: usize,
) -> Result<Vec<(NodeId, u64)>, DeltaError> {
    let k = comp.len();
    debug_assert!(k > 0);
    // Local index mapping and local adjacency.
    let mut local = vec![usize::MAX; g.n()];
    for (i, &v) in comp.iter().enumerate() {
        local[v] = i;
    }
    let adj: Vec<Vec<usize>> = comp
        .iter()
        .map(|&v| {
            g.neighbors(v)
                .iter()
                .map(|&u| {
                    assert!(local[u] != usize::MAX, "comp must be a full component");
                    local[u]
                })
                .collect()
        })
        .collect();

    let mut col: Vec<Option<u64>> = vec![None; k];
    if k == 1 {
        if delta == 0 {
            return Err(DeltaError::CliqueObstruction {
                witness: comp[0],
                size: 1,
            });
        }
        return Ok(vec![(comp[0], 0)]);
    }

    if let Some(root) = (0..k).find(|&i| adj[i].len() < delta) {
        // Non-regular component: reverse-BFS greedy from a sub-degree root.
        let allowed = vec![true; k];
        greedy_fill(&adj, &allowed, root, delta, &mut col);
    } else if delta == 2 {
        // Defensive: a 2-regular component is a cycle.
        if k % 2 == 1 {
            return Err(DeltaError::OddCycle {
                witness: comp[0],
                length: k,
            });
        }
        let order = bfs_order(&adj, &vec![true; k], 0);
        for &(i, d) in &order {
            col[i] = Some(u64::from(d % 2));
        }
    } else if k == delta + 1 {
        // Δ-regular on Δ+1 nodes: the complete graph.
        return Err(DeltaError::CliqueObstruction {
            witness: comp[0],
            size: k,
        });
    } else if let Some(x) = articulation_point(&adj) {
        // Δ-regular with a cut vertex: x has degree < Δ inside each side, so
        // each side colors greedily with x as the root; the sides' palettes
        // are then permuted to agree on x's color.
        color_around_cut_vertex(&adj, x, delta, &mut col);
    } else {
        // 2-connected, Δ-regular, not complete, Δ ≥ 3: Lovász's lemma
        // guarantees a vertex `a` with non-adjacent neighbors `b, c` such
        // that the component minus {b, c} stays connected.
        let (a, b, c) = find_lovasz_triple(&adj, k)
            .expect("2-connected non-complete Δ-regular component must contain a Lovász triple");
        col[b] = Some(0);
        col[c] = Some(0);
        let mut allowed = vec![true; k];
        allowed[b] = false;
        allowed[c] = false;
        greedy_fill(&adj, &allowed, a, delta, &mut col);
    }

    Ok(comp
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, col[i].expect("every component node colored")))
        .collect())
}

/// BFS over `allowed` nodes from `root`; returns `(node, depth)` in
/// discovery order (deterministic: sorted adjacency).
fn bfs_order(adj: &[Vec<usize>], allowed: &[bool], root: usize) -> Vec<(usize, u32)> {
    let mut order = vec![(root, 0u32)];
    let mut seen = vec![false; adj.len()];
    seen[root] = true;
    let mut head = 0;
    while head < order.len() {
        let (w, d) = order[head];
        head += 1;
        for &u in &adj[w] {
            if allowed[u] && !seen[u] {
                seen[u] = true;
                order.push((u, d + 1));
            }
        }
    }
    order
}

/// Colors the `allowed` nodes greedily in *reverse* BFS discovery order from
/// `root`: every non-root node still has its (closer-to-root) BFS parent
/// uncolored when its turn comes, so at most `deg − 1 ≤ delta − 1` of its
/// neighbors are colored and a color `< delta` is free; the root goes last
/// and needs its own degree-or-precoloring slack (arranged by the caller).
fn greedy_fill(
    adj: &[Vec<usize>],
    allowed: &[bool],
    root: usize,
    delta: usize,
    col: &mut [Option<u64>],
) {
    let order = bfs_order(adj, allowed, root);
    debug_assert_eq!(
        order.len(),
        allowed.iter().filter(|&&x| x).count(),
        "BFS must reach every allowed node (component connectivity)"
    );
    let mut used = vec![u64::MAX; delta]; // stamp array: used[c] = stamping node
    for &(w, _) in order.iter().rev() {
        for &u in &adj[w] {
            if let Some(c) = col[u] {
                used[c as usize] = w as u64;
            }
        }
        let free = (0..delta as u64)
            .find(|&c| used[c as usize] != w as u64)
            .expect("greedy order guarantees a free color below delta");
        col[w] = Some(free);
    }
}

/// First articulation point of a connected graph (iterative Tarjan lowlink),
/// or `None` if 2-connected.
fn articulation_point(adj: &[Vec<usize>]) -> Option<usize> {
    let k = adj.len();
    let mut disc = vec![usize::MAX; k];
    let mut low = vec![usize::MAX; k];
    let mut parent = vec![usize::MAX; k];
    let mut cut = vec![false; k];
    let mut timer = 1usize;
    let mut root_children = 0usize;
    // Explicit DFS stack of (node, next child index to examine).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    disc[0] = 0;
    low[0] = 0;
    while !stack.is_empty() {
        let (v, ci) = *stack.last().unwrap();
        if ci < adj[v].len() {
            stack.last_mut().unwrap().1 += 1;
            let u = adj[v][ci];
            if disc[u] == usize::MAX {
                parent[u] = v;
                disc[u] = timer;
                low[u] = timer;
                timer += 1;
                if v == 0 {
                    root_children += 1;
                }
                stack.push((u, 0));
            } else if u != parent[v] {
                low[v] = low[v].min(disc[u]);
            }
        } else {
            stack.pop();
            if let Some(&(p, _)) = stack.last() {
                low[p] = low[p].min(low[v]);
                if p != 0 && low[v] >= disc[p] {
                    cut[p] = true;
                }
            }
        }
    }
    if root_children > 1 {
        cut[0] = true;
    }
    (0..k).find(|&v| cut[v])
}

/// Colors a Δ-regular component around a cut vertex `x`: each component of
/// `comp − x`, together with `x`, is colored by reverse-BFS greedy rooted at
/// `x` (whose degree inside each side is `< Δ` because its edges split
/// across sides); the sides then permute two colors each so that `x` agrees.
fn color_around_cut_vertex(adj: &[Vec<usize>], x: usize, delta: usize, col: &mut [Option<u64>]) {
    let k = adj.len();
    // Partition comp − x into components via BFS.
    let mut side = vec![usize::MAX; k];
    let mut sides = 0usize;
    for start in 0..k {
        if start == x || side[start] != usize::MAX {
            continue;
        }
        let mut queue = vec![start];
        side[start] = sides;
        let mut head = 0;
        while head < queue.len() {
            let w = queue[head];
            head += 1;
            for &u in &adj[w] {
                if u != x && side[u] == usize::MAX {
                    side[u] = sides;
                    queue.push(u);
                }
            }
        }
        sides += 1;
    }
    debug_assert!(sides >= 2, "x must be a cut vertex");
    let mut x_color: Option<u64> = None;
    for s in 0..sides {
        let allowed: Vec<bool> = (0..k).map(|i| i == x || side[i] == s).collect();
        let mut side_col: Vec<Option<u64>> = vec![None; k];
        greedy_fill(adj, &allowed, x, delta, &mut side_col);
        let got = side_col[x].expect("x colored in its side");
        let target = *x_color.get_or_insert(got);
        for i in 0..k {
            if side[i] == s {
                let c = side_col[i].expect("side node colored");
                // Swap `got` and `target` so x's color matches side 0.
                col[i] = Some(if c == got {
                    target
                } else if c == target {
                    got
                } else {
                    c
                });
            }
        }
    }
    col[x] = x_color;
}

/// Finds a Lovász triple `(a, b, c)`: `b, c ∈ N(a)`, `b` and `c`
/// non-adjacent, and the graph minus `{b, c}` connected. Exists in every
/// 2-connected non-complete Δ-regular graph with Δ ≥ 3.
fn find_lovasz_triple(adj: &[Vec<usize>], k: usize) -> Option<(usize, usize, usize)> {
    let adjacent = |u: usize, v: usize| adj[u].binary_search(&v).is_ok();
    for a in 0..k {
        for (bi, &b) in adj[a].iter().enumerate() {
            for &c in &adj[a][bi + 1..] {
                if adjacent(b, c) {
                    continue;
                }
                // Connectivity of comp − {b, c}: BFS from a must reach the
                // remaining k − 2 nodes.
                let mut allowed = vec![true; k];
                allowed[b] = false;
                allowed[c] = false;
                if bfs_order(adj, &allowed, a).len() == k - 2 {
                    return Some((a, b, c));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, validation};

    fn check_component_coloring(g: &Graph, delta: usize) {
        let comp: Vec<NodeId> = (0..g.n()).collect();
        let assignments = brooks_color_component(g, &comp, delta).unwrap();
        let mut colors = vec![0u64; g.n()];
        for (v, c) in assignments {
            assert!(c < delta as u64, "color {c} out of palette {delta}");
            colors[v] = c;
        }
        assert_eq!(validation::check_proper(g, &colors), None);
    }

    #[test]
    fn probe_and_flip_preserve_properness() {
        // Path 0-1-2-3 colored 0,1,0,1: the {0,1}-chain from node 1 spans
        // everything; the {0,2}-chain from node 0 is just node 0.
        let g = generators::path(4);
        let mut colors = vec![0u64, 1, 0, 1];
        let mut visited = vec![false; 4];
        let chain = probe_chain(&g, &colors, 0, 1, 1, 3, &mut visited);
        assert!(chain.reached_target);
        assert_eq!(chain.nodes.len(), 4);
        assert_eq!(chain.edges, 3);
        assert!(visited.iter().all(|&x| !x), "scratch must be cleaned");
        let chain = probe_chain(&g, &colors, 0, 2, 0, 2, &mut visited);
        assert!(!chain.reached_target);
        assert_eq!(chain.nodes, vec![0]);
        flip_chain(&mut colors, 0, 2, &chain);
        assert_eq!(colors, vec![2, 1, 0, 1]);
        assert_eq!(validation::check_proper(&g, &colors), None);
    }

    #[test]
    fn non_regular_components_color_greedily() {
        for seed in 0..5 {
            let g = generators::random_connected(40, 25, seed);
            let delta = g.max_degree();
            if (0..g.n()).all(|v| g.degree(v) == delta) {
                continue; // regular by chance; other tests cover it
            }
            check_component_coloring(&g, delta);
        }
    }

    #[test]
    fn regular_two_connected_components_use_the_lovasz_triple() {
        // Hypercubes are Δ-regular, 2-connected, far from complete.
        for d in [3u32, 4] {
            let g = generators::hypercube(d);
            check_component_coloring(&g, d as usize);
        }
        // Complete bipartite K_{3,3}: 3-regular, 2-connected, triangle-free.
        check_component_coloring(&generators::complete_bipartite(3, 3), 3);
    }

    #[test]
    fn regular_component_with_cut_vertex_splits() {
        // Two copies of K_5 minus an edge, the cut vertex 0 wired to the two
        // degree-3 nodes of each copy: a 4-regular graph whose only
        // articulation point is 0 — exercises the cut-vertex branch.
        let mut edges = Vec::new();
        for base in [1usize, 6] {
            for u in base..base + 5 {
                for v in (u + 1)..base + 5 {
                    if (u, v) != (base, base + 1) {
                        edges.push((u, v));
                    }
                }
            }
            edges.push((0, base));
            edges.push((0, base + 1));
        }
        let g = Graph::from_edges(11, &edges).unwrap();
        assert!(
            (0..11).all(|v| g.degree(v) == 4),
            "construction is 4-regular"
        );
        assert_eq!(articulation_point(&adjacency(&g)), Some(0));
        check_component_coloring(&g, 4);
    }

    fn adjacency(g: &Graph) -> Vec<Vec<usize>> {
        (0..g.n()).map(|v| g.neighbors(v).to_vec()).collect()
    }

    #[test]
    fn petersen_graph_colors_with_three_colors() {
        // The Petersen graph: 3-regular, 2-connected, girth 5.
        let outer: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let spokes: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 5)).collect();
        let inner: Vec<(usize, usize)> = (0..5).map(|i| (i + 5, (i + 2) % 5 + 5)).collect();
        let edges: Vec<(usize, usize)> = outer.into_iter().chain(spokes).chain(inner).collect();
        let g = Graph::from_edges(10, &edges).unwrap();
        assert!((0..10).all(|v| g.degree(v) == 3));
        check_component_coloring(&g, 3);
    }

    #[test]
    fn complete_components_report_the_obstruction() {
        let g = generators::complete(5);
        let comp: Vec<NodeId> = (0..5).collect();
        assert_eq!(
            brooks_color_component(&g, &comp, 4),
            Err(DeltaError::CliqueObstruction {
                witness: 0,
                size: 5
            })
        );
    }

    #[test]
    fn defensive_cycle_branch() {
        let even = generators::ring(8);
        check_component_coloring(&even, 2);
        let odd = generators::ring(9);
        let comp: Vec<NodeId> = (0..9).collect();
        assert_eq!(
            brooks_color_component(&odd, &comp, 2),
            Err(DeltaError::OddCycle {
                witness: 0,
                length: 9
            })
        );
    }

    #[test]
    fn articulation_point_on_two_connected_graphs_is_none() {
        assert_eq!(articulation_point(&adjacency(&generators::ring(7))), None);
        assert_eq!(
            articulation_point(&adjacency(&generators::hypercube(3))),
            None
        );
        assert_eq!(
            articulation_point(&adjacency(&generators::path(5))),
            Some(1)
        );
    }
}

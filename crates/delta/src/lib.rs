//! Deterministic **Δ-coloring** under bandwidth limits — the first scenario
//! crate plugged into the shared `dcl_sim` runtime.
//!
//! The source paper colors with `Δ + 1` colors (one per node more than the
//! trivial lower bound); Halldórsson–Maus, *Distributed Δ-Coloring under
//! Bandwidth Limitations* (2024), extends the small-bandwidth regime to the
//! Brooks bound of exactly `Δ` colors for `Δ ≥ 3`. By Brooks' theorem a
//! graph of maximum degree Δ is Δ-colorable **unless** a connected component
//! is the complete graph `K_{Δ+1}` or (for `Δ = 2`) an odd cycle; those
//! obstructions are detected and rejected with the typed
//! [`DeltaError`] instead of a panic.
//!
//! The pipeline (`DESIGN.md` §2.2b) runs end to end on one metered
//! [`dcl_congest::Network`] — i.e. on the `dcl_sim` `Topology`/`RoundEngine`
//! runtime — so the backend knob and every swept [`dcl_sim::BandwidthCap`]
//! down to `⌈log₂ n⌉` bits apply to the whole algorithm:
//!
//! 1. **Obstruction detection** ([`obstruction`]): two real rounds (degrees,
//!    then adjacency lists, fragmented under small caps) let every node
//!    check the `K_{Δ+1}` condition locally; `Δ = 2` inputs are 2-colored
//!    over the BFS forest with a parity-verification round that exposes odd
//!    cycles.
//! 2. **Partial coloring** ([`coloring`]): the paper's own Theorem 1.1
//!    machinery (Linial + the Lemma 2.1/2.6 derandomization, reused from
//!    `dcl_coloring`) colors the canonical `(degree+1)` instance — at most
//!    one color too many, and only nodes of full degree Δ can hold the
//!    overflow color Δ.
//! 3. **Kempe recoloring** ([`kempe`]): overflow nodes are eliminated one by
//!    one — greedily when a color is free, otherwise by flipping a
//!    Kempe-style bichromatic chain within the message budget; the rare
//!    irreducible case converge-casts the component to its leader and solves
//!    it locally with the Lovász–Brooks procedure (charged like the other
//!    collect-at-leader finishes in the workspace).
//!
//! Results are bit-identical across `Backend::{Sequential, Parallel}` and
//! across bandwidth caps (property-tested in `tests/backend_equivalence.rs`).
//!
//! # Examples
//!
//! ```
//! use dcl_delta::{delta_color, DeltaColoringConfig};
//! use dcl_graphs::{generators, validation};
//!
//! let g = generators::random_regular(48, 5, 7);
//! let delta = g.max_degree() as u64;
//! let result = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
//! assert!(validation::check_proper(&g, &result.colors).is_none());
//! assert!(result.colors.iter().all(|&c| c < delta)); // Δ colors, not Δ+1
//! ```
//!
//! Obstructions come back as values, not panics:
//!
//! ```
//! use dcl_delta::{delta_color, DeltaColoringConfig, DeltaError};
//! use dcl_graphs::generators;
//!
//! let k5 = generators::complete(5);
//! let err = delta_color(&k5, &DeltaColoringConfig::default()).unwrap_err();
//! assert!(matches!(err, DeltaError::CliqueObstruction { size: 5, .. }));
//! ```

#![forbid(unsafe_code)]
// Node ids double as indices into per-node state vectors throughout the
// simulators; indexed loops over `0..n` are the clearest expression of
// "for every node" here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod coloring;
pub mod kempe;
pub mod obstruction;
pub mod scenario;

pub use coloring::{delta_color, DeltaColoringConfig, DeltaColoringResult};
pub use obstruction::DeltaError;
pub use scenario::DeltaScenario;

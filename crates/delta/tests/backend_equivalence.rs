//! Parallel vs sequential backend equivalence for the Δ-coloring pipeline,
//! via the shared `dcl_sim::test_util` helpers, plus the acceptance sweep:
//! every generator graph (gnp / power_law / expander, Δ ≥ 3) must produce a
//! valid Δ-coloring at the default cap *and* at cap = ⌈log₂ n⌉, bit-identical
//! across `Backend::{Sequential, Parallel}`.

use dcl_delta::{delta_color, DeltaColoringConfig, DeltaError};
use dcl_graphs::{generators, validation, Graph};
use dcl_par::Backend;
use dcl_sim::test_util::assert_backend_equivalent;
use dcl_sim::{bit_len, BandwidthCap, ExecConfig};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn config(backend: Backend, cap: Option<BandwidthCap>) -> DeltaColoringConfig {
    DeltaColoringConfig::default().with_exec(
        ExecConfig::default()
            .with_backend(backend)
            .with_cap_opt(cap),
    )
}

fn assert_valid_delta_coloring(g: &Graph, colors: &[u64]) {
    assert_eq!(validation::check_proper(g, colors), None);
    let delta = g.max_degree() as u64;
    assert!(
        colors.iter().all(|&c| c < delta),
        "Δ-coloring must use colors < {delta}"
    );
}

/// The acceptance sweep: each scale-tier generator family, both caps, both
/// backends, bit-identical results and a valid Δ-coloring everywhere.
#[test]
fn generator_graphs_color_identically_at_default_and_log_n_caps() {
    for (name, g) in [
        ("gnp(72,0.1)", generators::gnp(72, 0.1, 5)),
        (
            "power_law(90,2.5,5)",
            generators::power_law(90, 2.5, 5.0, 9),
        ),
        ("expander(64,4)", generators::expander(64, 4, 1)),
    ] {
        assert!(g.max_degree() >= 3, "{name}");
        let log_n = bit_len(g.n() as u64 - 1);
        for cap in [None, Some(BandwidthCap::new(log_n))] {
            let seq = delta_color(&g, &config(Backend::Sequential, cap))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let par = delta_color(&g, &config(Backend::Parallel(4), cap)).unwrap();
            assert_eq!(seq, par, "{name} cap {cap:?}: backends diverged");
            assert_valid_delta_coloring(&g, &seq.colors);
        }
    }
}

/// K_{Δ+1} inputs come back as the typed error — never a panic — and the
/// error is identical on both backends.
#[test]
fn clique_refusal_is_typed_and_backend_identical() {
    for k in [4usize, 5, 7] {
        let g = generators::complete(k);
        for backend in [Backend::Sequential, Backend::Parallel(3)] {
            assert_eq!(
                delta_color(&g, &config(backend, None)),
                Err(DeltaError::CliqueObstruction {
                    witness: 0,
                    size: k
                }),
                "K_{k} under {backend:?}"
            );
        }
    }
}

/// Odd cycles (Δ = 2) come back as the typed error on both backends, also
/// under a swept cap.
#[test]
fn odd_cycle_refusal_is_typed_and_backend_identical() {
    let g = generators::ring(11);
    let log_n = bit_len(g.n() as u64 - 1);
    for backend in [Backend::Sequential, Backend::Parallel(3)] {
        for cap in [None, Some(BandwidthCap::new(log_n))] {
            assert_eq!(
                delta_color(&g, &config(backend, cap)),
                Err(DeltaError::OddCycle {
                    witness: 0,
                    length: 11
                }),
                "{backend:?} cap {cap:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random instances: the whole pipeline (detection + Theorem 1.1 phase +
    /// Kempe recoloring) is bit-identical per backend and properly Δ-colored.
    #[test]
    fn delta_coloring_equivalence(n in 20usize..64, p in 0.1f64..0.3, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        prop_assume!(g.max_degree() >= 3);
        let seq = assert_backend_equivalent(3, |backend| {
            delta_color(&g, &config(backend, None))
        })
        .map_err(TestCaseError::Fail)?;
        if let Ok(result) = seq {
            assert_valid_delta_coloring(&g, &result.colors);
        }
    }

    /// The swept cap changes costs, never results, on either backend.
    #[test]
    fn swept_cap_equivalence(n in 24usize..56, seed in any::<u64>()) {
        let g = generators::expander(n, 4, seed);
        prop_assume!(g.max_degree() >= 3);
        let log_n = bit_len(g.n() as u64 - 1);
        let tight = assert_backend_equivalent(4, |backend| {
            delta_color(&g, &config(backend, Some(BandwidthCap::new(log_n))))
        })
        .map_err(TestCaseError::Fail)?;
        let default_run = delta_color(&g, &config(Backend::Sequential, None));
        match (tight, default_run) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.colors, b.colors, "cap changed the coloring");
                prop_assert!(a.metrics.rounds >= b.metrics.rounds);
            }
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }
}

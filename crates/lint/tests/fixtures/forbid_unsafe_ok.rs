//! Clean crate root: forbids unsafe code outright.

#![forbid(unsafe_code)]

pub fn noop() {}

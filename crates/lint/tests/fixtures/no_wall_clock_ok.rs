//! Clean: durations as pure data are fine; no clock is read.

use std::time::Duration;

pub const TICK: Duration = Duration::from_millis(5);

pub fn double(d: Duration) -> Duration {
    d * 2
}

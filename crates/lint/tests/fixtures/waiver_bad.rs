//! Waiver syntax fixture: malformed waivers are themselves violations and
//! do not suppress the findings they annotate.

// dcl-lint: allow(no-hash-iter)
use std::collections::HashSet;

// dcl-lint: allow(not-a-rule) — the rule name does not exist
pub fn noop() {}

//! Waiver syntax fixture: every seeded violation below carries a valid
//! per-line waiver, so the file lints clean.

// dcl-lint: allow(no-hash-iter) — membership-only set, never iterated
use std::collections::HashSet;

pub fn dedup_count(xs: &[u32]) -> usize {
    let mut seen = HashSet::new(); // dcl-lint: allow(no-hash-iter) — insert/contains only
    xs.iter().filter(|&&x| seen.insert(x)).count()
}

// dcl-lint: allow(no-wall-clock, no-print) — demo of a multi-rule waiver
pub fn trace(t: std::time::Instant) { println!("{:?}", t.elapsed()); }

//! Seeded violation: a crate root with no unsafe-code policy attribute.

pub fn noop() {}

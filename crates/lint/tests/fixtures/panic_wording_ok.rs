//! Clean: both canonical wordings.

pub fn check_budget(bits: u64, cap: u64, model: &str) {
    assert!(
        bits <= cap,
        "message of {bits} bits exceeds {model} cap of {cap} bits"
    );
}

pub fn check_progress(iterations: usize, cap: usize) {
    assert!(iterations < cap, "iteration cap {cap} exceeded — progress bug");
}

//! Seeded violation: a panic message with the stem "exceed" that the
//! run_protected classifier can neither confirm as Budget nor as a
//! past-tense safety net.

pub fn check(v: usize, quota: usize) {
    assert!(v <= quota, "node {v} exceeds its quota");
}

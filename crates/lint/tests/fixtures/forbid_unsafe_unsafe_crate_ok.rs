//! Clean root for an unsafe-permitted crate (dcl_par / dcl_kernels).

#![deny(unsafe_op_in_unsafe_fn)]

pub fn noop() {}

//! Seeded violation: intrinsics outside crates/kernels/.

pub fn sum2(a: f64, b: f64) -> f64 {
    let _detect = std::arch::is_x86_feature_detected!("avx2");
    a + b
}

//! Clean: ordered map, deterministic iteration.

use std::collections::BTreeMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut h: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h.into_iter().collect()
}

#[cfg(test)]
mod tests {
    // Tests may compare against hash references freely.
    use std::collections::HashSet;

    #[test]
    fn reference() {
        let s: HashSet<u32> = [1, 2].into_iter().collect();
        assert!(s.contains(&1));
    }
}

//! Seeded violation: wall-clock read in metered code.

use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> u128 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos()
}

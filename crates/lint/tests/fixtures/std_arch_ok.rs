//! Clean: no intrinsics; plain arithmetic only.

pub fn sum2(a: f64, b: f64) -> f64 {
    a + b
}

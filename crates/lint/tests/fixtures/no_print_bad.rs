//! Seeded violation: stdout noise from library code.

pub fn solve(x: u64) -> u64 {
    println!("solving {x}");
    x * 2
}

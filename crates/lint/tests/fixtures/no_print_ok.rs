//! Clean: library code returns data; only tests may print.

pub fn solve(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("checked {}", super::solve(2));
    }
}

//! Seeded violations for the service-crate class: hash-table state,
//! a raw wall-clock read, and stdout noise in what would be request
//! handling — all three banned in `crates/service` library code.

use std::collections::HashMap;
use std::time::Instant;

pub fn handle(pending: &HashMap<u64, Vec<u8>>) -> usize {
    let t0 = Instant::now();
    println!("draining {} requests", pending.len());
    t0.elapsed().as_millis() as usize
}

//! Seeded violation: hash-table state in a deterministic crate.

use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut h: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h.into_iter().collect()
}

//! Fixture-based tests for every `dcl_lint` rule family: one seeded
//! violation and one clean fixture per rule, plus the waiver-syntax
//! fixtures. Fixtures are plain text under `tests/fixtures/` (the
//! workspace walk skips `fixtures/` directories, so the seeded violations
//! never pollute a real `cargo lint` run); each is linted **as if** it
//! lived at a virtual workspace path, which is what decides rule scoping.

use dcl_lint::{lint_source, Diagnostic, WAIVER_SYNTAX};

/// Lints `source` under a virtual workspace-relative path.
fn lint(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source(path, source)
}

fn rules(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn std_arch_confined_flags_intrinsics_outside_kernels() {
    let bad = include_str!("fixtures/std_arch_bad.rs");
    let diags = lint("crates/sim/src/fixture.rs", bad);
    assert_eq!(rules(&diags), ["std-arch-confined"], "{diags:?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn std_arch_confined_allows_kernels_and_clean_code() {
    let bad = include_str!("fixtures/std_arch_bad.rs");
    // The same source is fine when it lives inside crates/kernels/.
    assert!(lint("crates/kernels/src/fixture.rs", bad).is_empty());
    let ok = include_str!("fixtures/std_arch_ok.rs");
    assert!(lint("crates/sim/src/fixture.rs", ok).is_empty());
}

#[test]
fn safety_comment_flags_bare_unsafe() {
    let bad = include_str!("fixtures/safety_comment_bad.rs");
    let diags = lint("crates/kernels/src/fixture.rs", bad);
    assert_eq!(rules(&diags), ["safety-comment"], "{diags:?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn safety_comment_accepts_preceding_comment() {
    let ok = include_str!("fixtures/safety_comment_ok.rs");
    assert!(lint("crates/kernels/src/fixture.rs", ok).is_empty());
}

#[test]
fn forbid_unsafe_requires_root_attribute() {
    let bad = include_str!("fixtures/forbid_unsafe_bad.rs");
    let diags = lint("crates/sim/src/lib.rs", bad);
    assert_eq!(rules(&diags), ["forbid-unsafe"], "{diags:?}");
    assert_eq!(diags[0].line, 1);
    // The same file is NOT a crate root under a module path: no finding.
    assert!(lint("crates/sim/src/util.rs", bad).is_empty());
}

#[test]
fn forbid_unsafe_unsafe_crates_need_deny_unsafe_op() {
    // A plain #![forbid(unsafe_code)] root is wrong for dcl_par/dcl_kernels:
    // they need #![deny(unsafe_op_in_unsafe_fn)].
    let forbid_root = include_str!("fixtures/forbid_unsafe_ok.rs");
    let diags = lint("crates/par/src/lib.rs", forbid_root);
    assert_eq!(rules(&diags), ["forbid-unsafe"], "{diags:?}");

    let deny_root = include_str!("fixtures/forbid_unsafe_unsafe_crate_ok.rs");
    assert!(lint("crates/par/src/lib.rs", deny_root).is_empty());
    assert!(lint("crates/kernels/src/lib.rs", deny_root).is_empty());
}

#[test]
fn forbid_unsafe_accepts_clean_root() {
    let ok = include_str!("fixtures/forbid_unsafe_ok.rs");
    assert!(lint("crates/sim/src/lib.rs", ok).is_empty());
    assert!(lint("src/lib.rs", ok).is_empty());
}

#[test]
fn no_hash_iter_flags_hash_types_in_deterministic_crates() {
    let bad = include_str!("fixtures/no_hash_iter_bad.rs");
    let diags = lint("crates/decomp/src/fixture.rs", bad);
    assert_eq!(
        rules(&diags),
        ["no-hash-iter", "no-hash-iter"],
        "use + construction: {diags:?}"
    );
    assert_eq!(diags[0].line, 3);
}

#[test]
fn no_hash_iter_exempts_ordered_maps_tests_and_non_metered_crates() {
    let ok = include_str!("fixtures/no_hash_iter_ok.rs");
    // BTreeMap everywhere, HashSet only inside #[cfg(test)]: clean.
    assert!(lint("crates/decomp/src/fixture.rs", ok).is_empty());
    // Hash types are fine in crates outside the deterministic set.
    let bad = include_str!("fixtures/no_hash_iter_bad.rs");
    assert!(lint("crates/bench/src/fixture.rs", bad).is_empty());
    // …and in integration tests of any crate.
    assert!(lint("crates/decomp/tests/fixture.rs", bad).is_empty());
}

#[test]
fn no_wall_clock_flags_instant_outside_bench() {
    let bad = include_str!("fixtures/no_wall_clock_bad.rs");
    let diags = lint("crates/sim/src/fixture.rs", bad);
    assert_eq!(
        rules(&diags),
        ["no-wall-clock", "no-wall-clock"],
        "{diags:?}"
    );
    assert_eq!(diags[0].line, 3);
}

#[test]
fn no_wall_clock_exempts_bench_and_duration_values() {
    let bad = include_str!("fixtures/no_wall_clock_bad.rs");
    assert!(lint("crates/bench/src/fixture.rs", bad).is_empty());
    let ok = include_str!("fixtures/no_wall_clock_ok.rs");
    assert!(lint("crates/sim/src/fixture.rs", ok).is_empty());
}

#[test]
fn no_wall_clock_exempts_the_audited_deadline_module_by_exact_path() {
    let bad = include_str!("fixtures/no_wall_clock_bad.rs");
    // The one audited clock module may hold `Instant` without waivers…
    assert!(lint("crates/sim/src/deadline.rs", bad).is_empty());
    // …but the exemption is the exact file, not a name: a `deadline.rs`
    // anywhere else in a deterministic crate is still flagged.
    assert!(!lint("crates/service/src/deadline.rs", bad).is_empty());
    assert!(!lint("crates/sim/src/deadline2.rs", bad).is_empty());
}

#[test]
fn service_crate_is_held_to_the_determinism_contract() {
    let bad = include_str!("fixtures/service_crate_bad.rs");
    // Library code in crates/service is metered-adjacent: the server must
    // produce byte-identical responses, so all three determinism rules
    // apply there.
    let diags = lint("crates/service/src/fixture.rs", bad);
    let mut seen = rules(&diags);
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        ["no-hash-iter", "no-print", "no-wall-clock"],
        "{diags:?}"
    );
    // The server binary is operational, not metered: prints are fine
    // there, but clocks and hash tables are still banned.
    let bin = lint("crates/service/src/bin/dcl_serve.rs", bad);
    let mut seen = rules(&bin);
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, ["no-hash-iter", "no-wall-clock"], "{bin:?}");
    // Integration tests of the service crate are exempt as everywhere.
    assert!(lint("crates/service/tests/fixture.rs", bad).is_empty());
}

#[test]
fn no_print_flags_library_prints() {
    let bad = include_str!("fixtures/no_print_bad.rs");
    let diags = lint("crates/runner/src/fixture.rs", bad);
    assert_eq!(rules(&diags), ["no-print"], "{diags:?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn no_print_exempts_bins_examples_and_tests() {
    let bad = include_str!("fixtures/no_print_bad.rs");
    assert!(lint("crates/bench/src/bin/fixture.rs", bad).is_empty());
    assert!(lint("examples/fixture.rs", bad).is_empty());
    assert!(lint("crates/runner/tests/fixture.rs", bad).is_empty());
    let ok = include_str!("fixtures/no_print_ok.rs");
    assert!(lint("crates/runner/src/fixture.rs", ok).is_empty());
}

#[test]
fn panic_wording_flags_ambiguous_exceed_messages() {
    let bad = include_str!("fixtures/panic_wording_bad.rs");
    let diags = lint("crates/clique/src/fixture.rs", bad);
    assert_eq!(rules(&diags), ["panic-wording"], "{diags:?}");
    assert_eq!(diags[0].line, 6);
}

#[test]
fn panic_wording_accepts_both_canonical_forms() {
    let ok = include_str!("fixtures/panic_wording_ok.rs");
    assert!(lint("crates/clique/src/fixture.rs", ok).is_empty());
    // Outside the deterministic crates the wording is unconstrained.
    let bad = include_str!("fixtures/panic_wording_bad.rs");
    assert!(lint("crates/kernels/src/fixture.rs", bad).is_empty());
}

#[test]
fn waivers_suppress_findings_with_reason() {
    let ok = include_str!("fixtures/waiver_ok.rs");
    let diags = lint("crates/sim/src/fixture.rs", ok);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn malformed_waivers_are_violations_and_do_not_suppress() {
    let bad = include_str!("fixtures/waiver_bad.rs");
    let diags = lint("crates/sim/src/fixture.rs", bad);
    // Reason-less waiver: reported AND the HashSet finding stays.
    assert!(
        diags.iter().any(|d| d.rule == WAIVER_SYNTAX && d.line == 4),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "no-hash-iter" && d.line == 5),
        "{diags:?}"
    );
    // Unknown rule name: reported.
    assert!(
        diags.iter().any(|d| d.rule == WAIVER_SYNTAX && d.line == 7),
        "{diags:?}"
    );
}

#[test]
fn the_real_workspace_is_lint_clean() {
    // Integration tests run with cwd = crates/lint; the workspace root is
    // two levels up. This pins the acceptance criterion that `cargo lint`
    // exits 0 on the committed tree.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let (files, diags) = dcl_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        files > 100,
        "expected to walk the whole workspace, saw {files} files"
    );
    assert!(
        diags.is_empty(),
        "workspace must be lint-clean:\n{}",
        diags
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

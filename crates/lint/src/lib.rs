//! `dcl_lint` — the workspace's static-analysis tier (`DESIGN.md` §9).
//!
//! Every bit-identity claim this reproduction makes rests on source-level
//! discipline that the compiler does not enforce: intrinsics stay confined
//! to `dcl_kernels`, metered code never iterates a hash table, simulator
//! panics keep the wording the Budget-vs-Panic classifier in `dcl_runner`
//! keys on, and so forth. This crate checks those contracts mechanically,
//! in the style of rust-lang's `tidy`: **line/token-level** analysis over
//! the raw sources — no `syn`, no dependencies, std only.
//!
//! ## Rule families
//!
//! | rule | contract |
//! |------|----------|
//! | `std-arch-confined` | `std::arch` / `core::arch` only inside `crates/kernels/` |
//! | `safety-comment` | every `unsafe` block/fn/impl is preceded by `// SAFETY:` |
//! | `forbid-unsafe` | crate roots carry `#![forbid(unsafe_code)]`; the two unsafe crates (`dcl_par`, `dcl_kernels`) carry `#![deny(unsafe_op_in_unsafe_fn)]` instead |
//! | `no-hash-iter` | no `HashMap`/`HashSet` in deterministic (simulator/driver) crates |
//! | `no-wall-clock` | no `Instant`/`SystemTime` outside `dcl_bench`, the audited `dcl_sim::deadline` module, and the vendored criterion shim (which is not walked) |
//! | `no-print` | no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code |
//! | `panic-wording` | panic messages containing the stem "exceed" classify unambiguously as Budget or safety-net under `run_protected`'s rules |
//!
//! ## Waivers
//!
//! Any diagnostic except `waiver-syntax` can be waived per line:
//!
//! ```text
//! // dcl-lint: allow(no-hash-iter) — membership-only dedup set, never iterated
//! ```
//!
//! The comment waives the named rule(s) on its own line and on the line
//! directly below it (so it works both as a trailing comment and as a
//! preceding full-line comment). A reason after the closing parenthesis is
//! mandatory; a missing reason or an unknown rule name is itself reported
//! as a `waiver-syntax` violation.
//!
//! ## Entry points
//!
//! [`lint_source`] lints one file given its workspace-relative path (the
//! path determines which rules apply — fixture tests use this to lint
//! synthetic files "as if" they lived in a given crate). [`lint_workspace`]
//! walks a real tree (skipping `vendor/`, `target/` and `fixtures/`
//! directories) and is what the `dcl_lint` binary runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::Path;

/// One rule family, for `--list-rules` style documentation.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in diagnostics and waivers.
    pub name: &'static str,
    /// One-line summary of the enforced contract.
    pub summary: &'static str,
}

/// The seven enforced rule families (plus the waiver well-formedness check,
/// which is not waivable and therefore not listed).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "std-arch-confined",
        summary: "std::arch/core::arch intrinsics only inside crates/kernels/",
    },
    RuleInfo {
        name: "safety-comment",
        summary: "every `unsafe` block/fn/impl is immediately preceded by a // SAFETY: comment",
    },
    RuleInfo {
        name: "forbid-unsafe",
        summary: "crate roots carry #![forbid(unsafe_code)] (dcl_par/dcl_kernels: \
                  #![deny(unsafe_op_in_unsafe_fn)])",
    },
    RuleInfo {
        name: "no-hash-iter",
        summary: "no HashMap/HashSet in deterministic crates (iteration order is nondeterministic)",
    },
    RuleInfo {
        name: "no-wall-clock",
        summary: "no Instant/SystemTime outside dcl_bench, dcl_sim::deadline and the \
                  criterion shim",
    },
    RuleInfo {
        name: "no-print",
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library code",
    },
    RuleInfo {
        name: "panic-wording",
        summary: "panic messages with the stem \"exceed\" must classify unambiguously \
                  under run_protected's Budget-vs-Panic rules",
    },
];

/// Name of the meta-rule reported for malformed waivers (not waivable).
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Returns true if `name` is one of the seven waivable rule families.
#[must_use]
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// A single `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule family name (or [`WAIVER_SYNTAX`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates that are allowed to contain `unsafe` (and must instead carry
/// `#![deny(unsafe_op_in_unsafe_fn)]` at their root).
const UNSAFE_CRATES: &[&str] = &["par", "kernels"];

/// Crates whose sources are metered / drive the deterministic pipeline:
/// hash-table types and ambiguous panic wordings are banned here. `"."` is
/// the root facade crate.
const DETERMINISM_CRATES: &[&str] = &[
    ".", "graphs", "congest", "clique", "mpc", "sim", "core", "decomp", "delta", "derand",
    "runner", "service",
];

/// Crates exempt from `no-wall-clock` (benchmarks time things by design).
const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// The single audited wall-clock module: `dcl_sim::deadline` wraps
/// `Instant` behind the `Deadline` type that the transport and service
/// tiers use for liveness timeouts. Confining the raw clock reads to this
/// one reviewed file (the same move `std-arch-confined` makes for
/// intrinsics) is what lets every other deterministic crate stay
/// clock-free without per-line waivers.
const WALL_CLOCK_MODULE: &str = "crates/sim/src/deadline.rs";

// ---------------------------------------------------------------------------
// Source model: comment/string-aware line decomposition.
// ---------------------------------------------------------------------------

/// One source line, decomposed for token-level checks.
#[derive(Debug, Default, Clone)]
struct Line {
    /// Code with comments removed and string/char literal contents blanked
    /// (the delimiting quotes are kept so tokenization stays sane).
    code: String,
    /// Concatenated comment text appearing on this line.
    comment: String,
    /// Contents of string literals *starting* on this line (a multi-line
    /// literal is attributed, whole, to its starting line).
    literals: Vec<String>,
    /// Inside a `#[cfg(test)] mod … { … }` block.
    in_test: bool,
}

#[derive(Debug)]
struct SourceModel {
    lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl SourceModel {
    fn parse(source: &str) -> Self {
        let chars: Vec<char> = source.chars().collect();
        let mut lines: Vec<Line> = Vec::new();
        let mut cur = Line::default();
        let mut state = ScanState::Code;
        let mut literal = String::new();
        let mut literal_start: usize = 0; // index into `lines` once pushed
        let mut i = 0usize;

        // Closes the current line at a '\n'.
        macro_rules! newline {
            () => {{
                lines.push(std::mem::take(&mut cur));
            }};
        }

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                ScanState::Code => match c {
                    '\n' => {
                        newline!();
                        i += 1;
                    }
                    '/' if next == Some('/') => {
                        state = ScanState::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = ScanState::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        cur.code.push('"');
                        state = ScanState::Str;
                        literal.clear();
                        literal_start = lines.len();
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw / byte string prefix; only when `r`
                        // starts a fresh token.
                        let prev_ident = i > 0 && is_ident(chars[i - 1]);
                        let mut j = i;
                        // Accept the prefixes r", b", br", rb… conservatively.
                        while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
                            j += 1;
                        }
                        let mut hashes = 0u8;
                        let mut k = j;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        let raw = j > i && chars[i..j].contains(&'r');
                        if !prev_ident && chars.get(k) == Some(&'"') && (raw || hashes == 0) {
                            if raw {
                                for &p in &chars[i..=k] {
                                    cur.code.push(p);
                                }
                                state = ScanState::RawStr(hashes);
                                literal.clear();
                                literal_start = lines.len();
                                i = k + 1;
                            } else if j == i + 1 && chars.get(j) == Some(&'"') {
                                // b"..." — ordinary escapes apply.
                                cur.code.push('b');
                                cur.code.push('"');
                                state = ScanState::Str;
                                literal.clear();
                                literal_start = lines.len();
                                i = j + 1;
                            } else {
                                cur.code.push(c);
                                i += 1;
                            }
                        } else if !prev_ident && c == 'b' && next == Some('\'') {
                            cur.code.push('b');
                            cur.code.push('\'');
                            state = ScanState::CharLit;
                            i += 2;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: treat as a char literal
                        // only for `'\…'` or `'x'` shapes.
                        if next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''))
                        {
                            cur.code.push('\'');
                            state = ScanState::CharLit;
                            i += 1;
                        } else {
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                },
                ScanState::LineComment => {
                    if c == '\n' {
                        newline!();
                        state = ScanState::Code;
                    } else {
                        cur.comment.push(c);
                    }
                    i += 1;
                }
                ScanState::BlockComment(depth) => {
                    if c == '\n' {
                        newline!();
                        i += 1;
                    } else if c == '/' && next == Some('*') {
                        state = ScanState::BlockComment(depth + 1);
                        i += 2;
                    } else if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            ScanState::Code
                        } else {
                            ScanState::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else {
                        cur.comment.push(c);
                        i += 1;
                    }
                }
                ScanState::Str => {
                    if c == '\\' {
                        literal.push(c);
                        if let Some(n) = next {
                            literal.push(n);
                        }
                        i += 2;
                    } else if c == '"' {
                        cur.code.push('"');
                        finish_literal(&mut lines, &mut cur, literal_start, &mut literal);
                        state = ScanState::Code;
                        i += 1;
                    } else {
                        if c == '\n' {
                            newline!();
                        }
                        literal.push(c);
                        i += 1;
                    }
                }
                ScanState::RawStr(hashes) => {
                    let closes = c == '"'
                        && (0..hashes as usize).all(|h| chars.get(i + 1 + h) == Some(&'#'));
                    if closes {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        finish_literal(&mut lines, &mut cur, literal_start, &mut literal);
                        state = ScanState::Code;
                        i += 1 + hashes as usize;
                    } else {
                        if c == '\n' {
                            newline!();
                        }
                        literal.push(c);
                        i += 1;
                    }
                }
                ScanState::CharLit => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '\'' {
                        cur.code.push('\'');
                        state = ScanState::Code;
                        i += 1;
                    } else if c == '\n' {
                        // Malformed; bail back to code to stay line-stable.
                        newline!();
                        state = ScanState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        lines.push(cur);

        let mut model = SourceModel { lines };
        model.mark_cfg_test_blocks();
        model
    }

    /// Marks lines inside `#[cfg(test)] mod … { … }` blocks (the only shape
    /// this workspace uses; an attribute on a non-block item is skipped via
    /// the `;`-before-`{` check).
    fn mark_cfg_test_blocks(&mut self) {
        let n = self.lines.len();
        let mut i = 0;
        while i < n {
            if self.lines[i].code.contains("#[cfg(test)]") {
                // Find the opening brace of the annotated item.
                let mut j = i;
                let mut open: Option<(usize, usize)> = None; // (line, col)
                'search: while j < n {
                    let code = self.lines[j].code.clone();
                    for (col, ch) in code.char_indices() {
                        if j == i {
                            // Skip the attribute itself.
                            if col < code.find("#[cfg(test)]").unwrap_or(0) + "#[cfg(test)]".len() {
                                continue;
                            }
                        }
                        if ch == ';' {
                            break 'search; // non-block item
                        }
                        if ch == '{' {
                            open = Some((j, col));
                            break 'search;
                        }
                    }
                    j += 1;
                }
                if let Some((start, col)) = open {
                    let mut depth = 0i64;
                    let mut k = start;
                    'brace: while k < n {
                        let code = self.lines[k].code.clone();
                        for (c2, ch) in code.char_indices() {
                            if k == start && c2 < col {
                                continue;
                            }
                            match ch {
                                '{' => depth += 1,
                                '}' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        for line in &mut self.lines[i..=k] {
                                            line.in_test = true;
                                        }
                                        i = k;
                                        break 'brace;
                                    }
                                }
                                _ => {}
                            }
                        }
                        k += 1;
                    }
                }
            }
            i += 1;
        }
    }
}

fn finish_literal(lines: &mut [Line], cur: &mut Line, start: usize, literal: &mut String) {
    let text = std::mem::take(literal);
    if start == lines.len() {
        cur.literals.push(text);
    } else if let Some(line) = lines.get_mut(start) {
        line.literals.push(text);
    }
}

/// True if `code` contains `word` as a standalone token (not as part of a
/// longer identifier).
fn has_token(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap());
        let after = code[at + word.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

const WAIVER_MARKER: &str = "dcl-lint:";

#[derive(Debug, Default)]
struct Waivers {
    /// `by_line[i]` = rules waived for 0-based line `i`.
    by_line: Vec<Vec<&'static str>>,
    /// Malformed-waiver diagnostics (never waivable).
    errors: Vec<(usize, String)>,
}

fn parse_waivers(model: &SourceModel) -> Waivers {
    let mut w = Waivers {
        by_line: vec![Vec::new(); model.lines.len() + 1],
        ..Waivers::default()
    };
    for (idx, line) in model.lines.iter().enumerate() {
        let Some(pos) = line.comment.find(WAIVER_MARKER) else {
            continue;
        };
        let directive = line.comment[pos + WAIVER_MARKER.len()..].trim_start();
        let Some(rest) = directive.strip_prefix("allow(") else {
            w.errors.push((
                idx,
                "malformed waiver: expected `dcl-lint: allow(rule, …) — reason`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            w.errors
                .push((idx, "malformed waiver: unclosed `allow(`".to_string()));
            continue;
        };
        let names: Vec<&str> = rest[..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
            .trim();
        let mut ok = true;
        if names.is_empty() {
            w.errors.push((
                idx,
                "malformed waiver: no rule named in `allow(…)`".to_string(),
            ));
            ok = false;
        }
        for name in &names {
            if !is_known_rule(name) {
                w.errors.push((
                    idx,
                    format!(
                        "unknown rule `{name}` in waiver (known rules: {})",
                        RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                    ),
                ));
                ok = false;
            }
        }
        if reason.len() < 3 {
            w.errors.push((
                idx,
                "waiver is missing its reason: `dcl-lint: allow(rule) — reason`".to_string(),
            ));
            ok = false;
        }
        if ok {
            for name in names {
                let name = RULES
                    .iter()
                    .map(|r| r.name)
                    .find(|n| *n == name)
                    .expect("checked above");
                // A waiver covers its own line and the line directly below.
                w.by_line[idx].push(name);
                if idx + 1 < w.by_line.len() {
                    w.by_line[idx + 1].push(name);
                }
            }
        }
    }
    w
}

// ---------------------------------------------------------------------------
// Per-file context derived from the workspace-relative path.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FileCtx {
    /// `crates/<name>` member name, or `"."` for the root facade.
    krate: String,
    /// Under a `tests/` or `benches/` directory (integration tests).
    test_file: bool,
    /// A binary/example target (`src/bin/`, `src/main.rs`, `examples/`).
    bin_file: bool,
    /// The crate-root file carrying inner attributes
    /// (`crates/<c>/src/lib.rs`, `crates/<c>/src/main.rs` or root `src/lib.rs`).
    crate_root: bool,
}

fn file_ctx(path: &str) -> FileCtx {
    let parts: Vec<&str> = path.split('/').collect();
    let (krate, rest): (String, &[&str]) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts[1].to_string(), &parts[2..])
    } else {
        (".".to_string(), &parts[..])
    };
    let test_file = rest.first() == Some(&"tests") || rest.first() == Some(&"benches");
    let bin_file = rest.first() == Some(&"examples")
        || (rest.first() == Some(&"src") && rest.get(1) == Some(&"bin"))
        || rest == ["src", "main.rs"];
    let crate_root = rest == ["src", "lib.rs"] || rest == ["src", "main.rs"];
    FileCtx {
        krate,
        test_file,
        bin_file,
        crate_root,
    }
}

// ---------------------------------------------------------------------------
// panic-wording classification (mirrors dcl_runner::run_protected).
// ---------------------------------------------------------------------------

/// Removes `{…}` format-argument spans so that argument *names* (`{budget}`,
/// `{cap}`) cannot influence classification — at runtime they are replaced
/// by values.
fn strip_format_args(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PanicClass {
    /// Classified as `RunError::Budget` by `run_protected`.
    Budget,
    /// Past-tense safety-net wording, classified as `RunError::Panic`.
    SafetyNet,
    /// Contains the stem "exceed" but matches neither canonical form.
    Ambiguous,
}

/// Classifies a panic-message literal. Returns `None` when the literal does
/// not contain the stem "exceed" (then the rule does not apply).
fn classify_panic_literal(lit: &str) -> Option<PanicClass> {
    let text = strip_format_args(lit).to_lowercase();
    if !text.contains("exceed") {
        return None;
    }
    let budget = text.contains("budget")
        || text.contains("exceeding its memory")
        || (text.contains("exceeds") && text.contains("cap"));
    if budget {
        return Some(PanicClass::Budget);
    }
    if text.contains("exceeded") && !text.contains("exceeds") {
        return Some(PanicClass::SafetyNet);
    }
    Some(PanicClass::Ambiguous)
}

// ---------------------------------------------------------------------------
// The lint pass.
// ---------------------------------------------------------------------------

/// Lints one file. `path` must be workspace-relative with `/` separators;
/// it determines crate attribution and therefore which rules apply.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let model = SourceModel::parse(source);
    let waivers = parse_waivers(&model);
    let ctx = file_ctx(path);
    let mut raw: Vec<Diagnostic> = Vec::new();

    let diag = |line: usize, rule: &'static str, message: String| Diagnostic {
        path: path.to_string(),
        line: line + 1,
        rule,
        message,
    };

    for (err_line, msg) in &waivers.errors {
        raw.push(diag(*err_line, WAIVER_SYNTAX, msg.clone()));
    }

    // forbid-unsafe: crate-root attribute audit.
    if ctx.crate_root {
        let has = |needle: &str| model.lines.iter().any(|l| l.code.contains(needle));
        let mut missing: Option<&str> = None;
        if UNSAFE_CRATES.contains(&ctx.krate.as_str()) {
            if !has("#![deny(unsafe_op_in_unsafe_fn)]") {
                missing = Some(
                    "unsafe-permitted crate must carry #![deny(unsafe_op_in_unsafe_fn)] at its root",
                );
            }
        } else if !has("#![forbid(unsafe_code)]") {
            missing = Some("crate root must carry #![forbid(unsafe_code)]");
        }
        if let Some(msg) = missing {
            if !waivers.by_line[0].contains(&"forbid-unsafe") {
                raw.push(diag(0, "forbid-unsafe", msg.to_string()));
            }
        }
    }

    let determinism_crate = DETERMINISM_CRATES.contains(&ctx.krate.as_str());
    let wall_clock_exempt =
        WALL_CLOCK_EXEMPT_CRATES.contains(&ctx.krate.as_str()) || path == WALL_CLOCK_MODULE;
    let kernels_file = path.starts_with("crates/kernels/");

    for (i, line) in model.lines.iter().enumerate() {
        let waived = |rule: &str| waivers.by_line[i].contains(&rule);
        let exempt_test = ctx.test_file || line.in_test;

        // std-arch-confined — applies everywhere outside crates/kernels/,
        // including tests (intrinsics in a test would still skew parity).
        if !kernels_file
            && (line.code.contains("std::arch") || line.code.contains("core::arch"))
            && !waived("std-arch-confined")
        {
            raw.push(diag(
                i,
                "std-arch-confined",
                "architecture intrinsics (`std::arch`/`core::arch`) are confined to \
                 crates/kernels/ — add a kernel entry point instead"
                    .to_string(),
            ));
        }

        // safety-comment — every `unsafe` token needs a contiguous
        // preceding (or same-line) `// SAFETY:` comment.
        if has_token(&line.code, "unsafe") && !waived("safety-comment") {
            let mut ok = line.comment.contains("SAFETY:");
            let mut j = i;
            while !ok && j > 0 {
                j -= 1;
                let above = &model.lines[j];
                if !above.code.trim().is_empty() {
                    break; // a code line interrupts the comment block
                }
                if above.comment.contains("SAFETY:") {
                    ok = true;
                }
                if above.comment.is_empty() && above.code.trim().is_empty() {
                    break; // blank line ends the block
                }
            }
            if !ok {
                raw.push(diag(
                    i,
                    "safety-comment",
                    "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
                ));
            }
        }

        // no-hash-iter — deterministic crates, non-test code only.
        if determinism_crate && !exempt_test && !waived("no-hash-iter") {
            for ty in ["HashMap", "HashSet"] {
                if has_token(&line.code, ty) {
                    raw.push(diag(
                        i,
                        "no-hash-iter",
                        format!(
                            "`{ty}` in a deterministic crate — iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or a sorted Vec \
                             (or waive if provably never iterated)"
                        ),
                    ));
                }
            }
        }

        // no-wall-clock — everywhere except dcl_bench; non-test code only.
        if !wall_clock_exempt && !exempt_test && !waived("no-wall-clock") {
            for ty in ["Instant", "SystemTime"] {
                if has_token(&line.code, ty) {
                    raw.push(diag(
                        i,
                        "no-wall-clock",
                        format!(
                            "`{ty}` outside dcl_bench — metered code must not read wall \
                             clocks (round/bit counters are the only time source); for \
                             liveness timeouts use dcl_sim::Deadline, the one audited \
                             clock module"
                        ),
                    ));
                }
            }
        }

        // no-print — library code only (bins, examples, tests exempt).
        if !ctx.bin_file && !exempt_test && !waived("no-print") {
            for mac in ["println", "eprintln", "print", "eprint", "dbg"] {
                let bang = format!("{mac}!");
                if line.code.contains(&bang) && has_token(&line.code, mac) {
                    raw.push(diag(
                        i,
                        "no-print",
                        format!(
                            "`{bang}` in library code — return data or use the bench/bin \
                             layer for output"
                        ),
                    ));
                    break;
                }
            }
        }

        // panic-wording — deterministic crates, non-test code only.
        if determinism_crate && !exempt_test && !waived("panic-wording") {
            for lit in &line.literals {
                if classify_panic_literal(lit) == Some(PanicClass::Ambiguous) {
                    raw.push(diag(
                        i,
                        "panic-wording",
                        format!(
                            "message {lit:?} contains the stem \"exceed\" but matches \
                             neither canonical wording: budget assertions must say \
                             \"budget\" / \"exceeding its memory\" / \"exceeds … cap\"; \
                             safety nets must use past-tense \"exceeded\" (see \
                             dcl_runner::run_protected)"
                        ),
                    ));
                }
            }
        }
    }

    raw
}

/// Walks a workspace tree and lints every `.rs` file under `src/`,
/// `crates/`, `tests/` and `examples/`, skipping `vendor/`, `target/` and
/// any `fixtures/` directory. Returns `(files_checked, diagnostics)` with
/// diagnostics sorted by path and line.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut diagnostics = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diagnostics.extend(lint_source(&rel, &source));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok((files.len(), diagnostics))
}

const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "node_modules"];

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let m = SourceModel::parse(
            "let x = \"HashMap in a string\"; // HashMap in a comment\nuse std::collections::HashMap;\n",
        );
        assert!(!has_token(&m.lines[0].code, "HashMap"));
        assert!(m.lines[0].comment.contains("HashMap in a comment"));
        assert_eq!(m.lines[0].literals, vec!["HashMap in a string".to_string()]);
        assert!(has_token(&m.lines[1].code, "HashMap"));
    }

    #[test]
    fn raw_strings_and_chars_are_handled() {
        let m = SourceModel::parse(
            "let s = r#\"Instant \"quoted\" inside\"#;\nlet c = '\"'; let l: &'static str = \"x\";\n",
        );
        assert!(!m.lines[0].code.contains("Instant"));
        assert_eq!(m.lines[0].literals.len(), 1);
        // The '"' char literal must not open a string.
        assert_eq!(m.lines[1].literals, vec!["x".to_string()]);
    }

    #[test]
    fn multi_line_literal_attributes_to_start_line() {
        let m = SourceModel::parse("panic!(\n    \"line one\n     line two\"\n);\n");
        assert!(m.lines[1].literals[0].contains("line two"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    fn t() {}\n}\nfn after() {}\n";
        let m = SourceModel::parse(src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[1].in_test && m.lines[4].in_test && m.lines[5].in_test);
        assert!(!m.lines[6].in_test);
    }

    #[test]
    fn cfg_test_on_statement_does_not_swallow_following_block() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {\n    body();\n}\n";
        let m = SourceModel::parse(src);
        assert!(!m.lines[3].in_test);
    }

    #[test]
    fn format_args_do_not_leak_into_classification() {
        // `{budget}` must not make this read as budget wording.
        assert_eq!(
            classify_panic_literal("value {budget} exceed limit"),
            Some(PanicClass::Ambiguous)
        );
        assert_eq!(
            classify_panic_literal("machine 3 exceeded its send budget of 10 words"),
            Some(PanicClass::Budget)
        );
        assert_eq!(
            classify_panic_literal("message of 9 bits exceeds CONGEST cap of 8 bits"),
            Some(PanicClass::Budget)
        );
        assert_eq!(
            classify_panic_literal("machine 1 stores 99 words, exceeding its memory of 80"),
            Some(PanicClass::Budget)
        );
        assert_eq!(
            classify_panic_literal("iteration cap exceeded — progress bug"),
            Some(PanicClass::SafetyNet)
        );
        assert_eq!(classify_panic_literal("no stem here"), None);
    }

    #[test]
    fn waiver_requires_reason_and_known_rule() {
        let src = "// dcl-lint: allow(no-print)\nprintln!(\"x\");\n";
        let d = lint_source("crates/sim/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == WAIVER_SYNTAX));
        // The malformed waiver does not suppress the violation.
        assert!(d.iter().any(|d| d.rule == "no-print"));

        let src = "// dcl-lint: allow(no-such-rule) — because\n";
        let d = lint_source("crates/sim/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == WAIVER_SYNTAX));
    }

    #[test]
    fn trailing_and_preceding_waivers_cover_the_line() {
        let trailing =
            "use std::collections::HashMap; // dcl-lint: allow(no-hash-iter) — never iterated\n";
        assert!(lint_source("crates/sim/src/x.rs", trailing).is_empty());
        let preceding =
            "// dcl-lint: allow(no-hash-iter) — never iterated\nuse std::collections::HashMap;\n";
        assert!(lint_source("crates/sim/src/x.rs", preceding).is_empty());
    }
}

//! `dcl_lint` binary: walks the workspace and reports contract violations.
//!
//! Usage:
//!
//! ```text
//! cargo lint                 # via the .cargo/config.toml alias
//! cargo run -p dcl_lint      # equivalent
//! cargo run -p dcl_lint -- --list-rules
//! cargo run -p dcl_lint -- <workspace-root>
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any unwaived violation remains.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(arg: Option<String>) -> PathBuf {
    if let Some(root) = arg {
        return PathBuf::from(root);
    }
    // When run through cargo, CARGO_MANIFEST_DIR = <root>/crates/lint.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root_arg = None;
    for arg in &mut args {
        match arg.as_str() {
            "--list-rules" => {
                for rule in dcl_lint::RULES {
                    println!("{:18} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "dcl_lint — workspace static-analysis pass (DESIGN.md §9)\n\n\
                     USAGE: dcl_lint [--list-rules] [workspace-root]\n\n\
                     Waive a finding with `// dcl-lint: allow(rule) — reason` on or\n\
                     directly above the offending line."
                );
                return ExitCode::SUCCESS;
            }
            other => root_arg = Some(other.to_string()),
        }
    }

    let root = workspace_root(root_arg);
    match dcl_lint::lint_workspace(&root) {
        Ok((files, diagnostics)) => {
            for d in &diagnostics {
                println!("{d}");
            }
            if diagnostics.is_empty() {
                println!("dcl_lint: {files} files checked, 0 violations");
                ExitCode::SUCCESS
            } else {
                println!(
                    "dcl_lint: {files} files checked, {} violation(s)",
                    diagnostics.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("dcl_lint: i/o error walking {}: {err}", root.display());
            ExitCode::FAILURE
        }
    }
}
